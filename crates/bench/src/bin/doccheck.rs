//! Markdown relative-link checker for the repo's documentation.
//!
//! Scans `README.md`, `DESIGN.md`, `ROADMAP.md`, `EXPERIMENTS.md`, and every
//! `docs/*.md` for inline links (`[text](target)`), and verifies that each
//! relative target resolves to an existing file — including `#anchor`
//! fragments, which must match a heading in the target document under
//! GitHub's slugification rules. External (`http(s)://`) links are skipped:
//! CI runs offline. Exits non-zero listing every broken link.
//!
//! Usage: `doccheck [REPO_ROOT]` (default: current directory). Wired into
//! `ci.sh` so documentation cannot silently rot as files move.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// GitHub heading slug: lowercase, alphanumerics kept, spaces become
/// hyphens, everything else dropped.
fn slugify(heading: &str) -> String {
    let mut s = String::new();
    for c in heading.trim().chars() {
        if c.is_alphanumeric() {
            for lc in c.to_lowercase() {
                s.push(lc);
            }
        } else if c == ' ' || c == '-' {
            s.push('-');
        }
    }
    s
}

/// Headings of a markdown file as anchor slugs (fenced code blocks excluded).
fn anchors(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence && trimmed.starts_with('#') {
            let heading = trimmed.trim_start_matches('#');
            if heading.starts_with(' ') || heading.is_empty() {
                out.push(slugify(heading));
            }
        }
    }
    out
}

/// Inline `[text](target)` links with their 1-based line numbers. Ignores
/// fenced code blocks and images; tolerates nothing fancier than one level
/// of nesting in the link text.
fn links(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (ln, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'[' {
                // Find the matching close bracket, then require "(" next.
                let mut depth = 1usize;
                let mut j = i + 1;
                while j < bytes.len() && depth > 0 {
                    match bytes[j] {
                        b'[' => depth += 1,
                        b']' => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                if depth == 0 && j < bytes.len() && bytes[j] == b'(' {
                    if let Some(close) = line[j + 1..].find(')') {
                        out.push((ln + 1, line[j + 1..j + 1 + close].to_string()));
                        i = j + 1 + close;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }
    out
}

fn check_file(root: &Path, file: &Path, problems: &mut String) -> usize {
    let text =
        std::fs::read_to_string(file).unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
    let dir = file.parent().unwrap_or(root);
    let mut checked = 0;
    for (line, target) in links(&text) {
        if target.starts_with("http://") || target.starts_with("https://") {
            continue;
        }
        checked += 1;
        let (path_part, frag) = match target.split_once('#') {
            Some((p, f)) => (p, Some(f)),
            None => (target.as_str(), None),
        };
        let resolved: PathBuf = if path_part.is_empty() {
            file.to_path_buf() // pure in-document anchor
        } else {
            dir.join(path_part)
        };
        if !resolved.exists() {
            let _ = writeln!(
                problems,
                "{}:{line}: broken link `{target}` (no such file {})",
                file.display(),
                resolved.display()
            );
            continue;
        }
        if let Some(frag) = frag {
            let is_md = resolved.extension().is_some_and(|e| e == "md");
            if is_md {
                let dest = std::fs::read_to_string(&resolved)
                    .unwrap_or_else(|e| panic!("read {}: {e}", resolved.display()));
                if !anchors(&dest).iter().any(|a| a == frag) {
                    let _ = writeln!(
                        problems,
                        "{}:{line}: broken anchor `#{frag}` in `{target}` (no such heading in {})",
                        file.display(),
                        resolved.display()
                    );
                }
            }
        }
    }
    checked
}

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let mut targets: Vec<PathBuf> = ["README.md", "DESIGN.md", "ROADMAP.md", "EXPERIMENTS.md"]
        .iter()
        .map(|f| root.join(f))
        .filter(|p| p.exists())
        .collect();
    let docs = root.join("docs");
    if docs.is_dir() {
        let mut md: Vec<PathBuf> = std::fs::read_dir(&docs)
            .unwrap_or_else(|e| panic!("read_dir {}: {e}", docs.display()))
            .map(|e| e.expect("dir entry").path())
            .filter(|p| p.extension().is_some_and(|e| e == "md"))
            .collect();
        md.sort();
        targets.extend(md);
    }

    let mut problems = String::new();
    let mut total = 0;
    for file in &targets {
        total += check_file(&root, file, &mut problems);
    }
    if problems.is_empty() {
        println!(
            "doccheck: {} relative links OK across {} files",
            total,
            targets.len()
        );
    } else {
        eprint!("{problems}");
        eprintln!("doccheck: FAILED");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_match_github_rules() {
        assert_eq!(
            slugify("The model in one paragraph"),
            "the-model-in-one-paragraph"
        );
        assert_eq!(
            slugify("Why virtual times are bit-identical"),
            "why-virtual-times-are-bit-identical"
        );
        assert_eq!(
            slugify("Writing programs against `SimCtx`"),
            "writing-programs-against-simctx"
        );
    }

    #[test]
    fn finds_links_outside_code_fences() {
        let md = "see [a](x.md) and\n```\n[not](y.md)\n```\n[b](z.md#sec)\n";
        let got = links(md);
        assert_eq!(got, vec![(1, "x.md".into()), (5, "z.md#sec".into())]);
    }
}
