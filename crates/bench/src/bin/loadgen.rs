//! loadgen — throughput/latency benchmark for the job service (`svc`).
//!
//! Stands up a [`svc::Service`] with a bounded worker pool, submits N
//! concurrent jobs from four tenants across a mix of spec templates
//! (interactive workstation probes, Summit sweep rows, fat-node batch
//! jobs, chaos scenarios with injected faults), waits for all of them,
//! and reports service throughput (jobs/sec) and the p50/p99 of the
//! submit→completion latency. Every template repeats, so the run doubles
//! as a determinism audit: results are persisted to a JSONL store and
//! grouped by workload digest, and every group must be bit-identical.
//!
//! Flags:
//! * `--quick`      small shapes and fewer jobs (CI smoke).
//! * `--jobs N`     total jobs to submit (default 64; quick default 16).
//! * `--workers N`  worker pool size (default: up to 8 cores).
//! * `--json PATH`  write the results artifact (see `BENCH_pr8.json`).
//! * `--validate`   exit non-zero unless the service held its contract:
//!   every job completed (no rejections, timeouts, panics) and every
//!   repeated workload was bit-identical.
//!
//! `BENCH_pr8.json` at the repo root was produced by `loadgen --jobs 64
//! --json BENCH_pr8.json`; see `docs/PERFORMANCE.md`.

use svc::{ClusterPreset, FaultScenario, JobSpec, ResultStore, Service, ServiceConfig};

struct Args {
    quick: bool,
    jobs: Option<usize>,
    workers: Option<usize>,
    json: Option<String>,
    validate: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        jobs: None,
        workers: None,
        json: None,
        validate: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let operand = |i: usize| -> String {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", argv[i]))
                .clone()
        };
        match argv[i].as_str() {
            "--quick" => {
                args.quick = true;
                i += 1;
            }
            "--jobs" => {
                args.jobs = Some(operand(i).parse().expect("--jobs N"));
                i += 2;
            }
            "--workers" => {
                args.workers = Some(operand(i).parse().expect("--workers N"));
                i += 2;
            }
            "--json" => {
                args.json = Some(operand(i));
                i += 2;
            }
            "--validate" => {
                args.validate = true;
                i += 1;
            }
            other => panic!(
                "unknown flag {other} (expected --quick / --jobs N / --workers N / --json PATH / --validate)"
            ),
        }
    }
    args
}

/// The mixed tenant/template pool. Extents shrink under `--quick` so the
/// smoke finishes in seconds; the shapes and tenant mix stay the same.
fn templates(quick: bool) -> Vec<JobSpec> {
    let e = |full: u64, small: u64| if quick { small } else { full };
    vec![
        // "interactive": small workstation probes, weight 4 (latency-
        // sensitive tenant gets the largest fair share).
        JobSpec::new(
            "interactive",
            ClusterPreset::Workstation { gpus: 2 },
            2,
            [e(192, 64); 3],
        )
        .weight(4)
        .iters(2),
        JobSpec::new(
            "interactive",
            ClusterPreset::Workstation { gpus: 4 },
            4,
            [e(256, 96); 3],
        )
        .weight(4)
        .iters(2),
        // "sweep": paper-style Summit rows, weight 2.
        JobSpec::new(
            "sweep",
            ClusterPreset::Summit { nodes: 1 },
            6,
            [e(384, 96); 3],
        )
        .weight(2)
        .iters(2),
        JobSpec::new(
            "sweep",
            ClusterPreset::Summit { nodes: 2 },
            6,
            [e(384, 128); 3],
        )
        .weight(2)
        .cuda_aware(true)
        .consolidate(true)
        .iters(2),
        JobSpec::new(
            "sweep",
            ClusterPreset::Summit { nodes: 2 },
            6,
            [e(256, 96); 3],
        )
        .weight(2)
        .placement(stencil_core::PlacementStrategy::Hierarchical)
        .iters(2),
        // Persistent-transport stack: internode legs ride pre-matched
        // channels (see docs/TRANSPORTS.md).
        JobSpec::new(
            "sweep",
            ClusterPreset::Summit { nodes: 2 },
            6,
            [e(256, 96); 3],
        )
        .weight(2)
        .methods(stencil_core::Methods::all().with_persistent())
        .iters(2),
        // "batch": bigger nodes, slower placements, metrics on.
        JobSpec::new("batch", ClusterPreset::Dgx { nodes: 1 }, 8, [e(256, 96); 3])
            .placement(stencil_core::PlacementStrategy::GreedySwap)
            .collect_metrics(true)
            .iters(2),
        JobSpec::new(
            "batch",
            ClusterPreset::Fat {
                nodes: 1,
                sockets: 2,
                islands_per_socket: 2,
                gpus_per_island: 2,
            },
            8,
            [e(256, 96); 3],
        )
        .iters(2),
        // "chaos": fault-injected runs.
        JobSpec::new(
            "chaos",
            ClusterPreset::Summit { nodes: 1 },
            6,
            [e(256, 96); 3],
        )
        .faults(FaultScenario::StragglerGpu {
            device: 2,
            at_us: 0,
            speed_factor: 0.25,
        })
        .iters(2),
        JobSpec::new(
            "chaos",
            ClusterPreset::Summit { nodes: 2 },
            6,
            [e(256, 96); 3],
        )
        .faults(FaultScenario::FlappingNic {
            node: 0,
            first_down_us: 100,
            down_us: 500,
            up_us: 250,
            flaps: 3,
        })
        .iters(4),
    ]
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct TenantRow {
    tenant: String,
    jobs: usize,
    mean_queue_ms: f64,
    mean_run_ms: f64,
    p99_total_ms: f64,
}

/// The run-level numbers that land in the JSON artifact.
struct RunSummary<'a> {
    quick: bool,
    jobs: usize,
    workers: usize,
    wall_s: f64,
    jobs_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    rows: &'a [TenantRow],
    digest_groups: usize,
    bit_identical: bool,
}

fn write_json(path: &str, run: &RunSummary<'_>) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"suite\": \"loadgen\",\n");
    s.push_str(&format!(
        "  \"schema_version\": {},\n",
        detsim::SCHEMA_VERSION
    ));
    s.push_str(&format!("  \"quick\": {},\n", run.quick));
    s.push_str(&format!("  \"jobs\": {},\n", run.jobs));
    s.push_str(&format!("  \"workers\": {},\n", run.workers));
    s.push_str(&format!("  \"wall_s\": {:.3},\n", run.wall_s));
    s.push_str(&format!("  \"jobs_per_sec\": {:.3},\n", run.jobs_per_sec));
    s.push_str(&format!("  \"p50_total_ms\": {:.3},\n", run.p50_ms));
    s.push_str(&format!("  \"p99_total_ms\": {:.3},\n", run.p99_ms));
    s.push_str(&format!("  \"digest_groups\": {},\n", run.digest_groups));
    s.push_str(&format!("  \"bit_identical\": {},\n", run.bit_identical));
    s.push_str("  \"tenants\": [\n");
    let rows = run.rows;
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"tenant\": \"{}\", \"jobs\": {}, \"mean_queue_ms\": {:.3}, \
             \"mean_run_ms\": {:.3}, \"p99_total_ms\": {:.3}}}{}\n",
            r.tenant,
            r.jobs,
            r.mean_queue_ms,
            r.mean_run_ms,
            r.p99_total_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nresults written to {path}");
}

fn main() {
    let args = parse_args();
    let jobs = args.jobs.unwrap_or(if args.quick { 16 } else { 64 });
    let workers = args.workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4)
    });

    let store_path = std::env::temp_dir().join(format!("loadgen-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&store_path);
    let store = ResultStore::open(&store_path).expect("open result store");
    let service = Service::with_store(
        ServiceConfig {
            workers,
            queue_capacity: jobs,
            default_timeout_ms: None,
        },
        store,
    );

    let pool = templates(args.quick);
    println!(
        "loadgen: {jobs} jobs, {} templates, {workers} workers{}",
        pool.len(),
        if args.quick { " (quick)" } else { "" }
    );

    let t0 = std::time::Instant::now();
    let mut handles = Vec::with_capacity(jobs);
    let mut rejected = 0usize;
    for i in 0..jobs {
        let spec = pool[i % pool.len()].clone();
        match service.submit(spec) {
            Ok(h) => handles.push(h),
            Err(e) => {
                eprintln!("job {i} rejected: {e}");
                rejected += 1;
            }
        }
    }
    let results: Vec<svc::JobResult> = handles.iter().map(|h| h.wait()).collect();
    let wall_s = t0.elapsed().as_secs_f64();

    // Per-tenant table.
    let mut rows: Vec<TenantRow> = Vec::new();
    let mut tenants: Vec<String> = results.iter().map(|r| r.tenant.clone()).collect();
    tenants.sort();
    tenants.dedup();
    println!(
        "\n  {:<14} {:>5} {:>14} {:>12} {:>14}",
        "tenant", "jobs", "mean queue", "mean run", "p99 total"
    );
    for t in &tenants {
        let of_t: Vec<&svc::JobResult> = results.iter().filter(|r| &r.tenant == t).collect();
        let n = of_t.len();
        let mean_queue_ms = of_t.iter().map(|r| r.queue_ms).sum::<f64>() / n as f64;
        let mean_run_ms = of_t.iter().map(|r| r.run_ms).sum::<f64>() / n as f64;
        let mut totals: Vec<f64> = of_t.iter().map(|r| r.total_ms).collect();
        totals.sort_by(f64::total_cmp);
        let p99_total_ms = percentile(&totals, 0.99);
        println!(
            "  {t:<14} {n:>5} {:>11.1} ms {:>9.1} ms {:>11.1} ms",
            mean_queue_ms, mean_run_ms, p99_total_ms
        );
        rows.push(TenantRow {
            tenant: t.clone(),
            jobs: n,
            mean_queue_ms,
            mean_run_ms,
            p99_total_ms,
        });
    }

    let mut totals: Vec<f64> = results.iter().map(|r| r.total_ms).collect();
    totals.sort_by(f64::total_cmp);
    let p50 = percentile(&totals, 0.50);
    let p99 = percentile(&totals, 0.99);
    let jobs_per_sec = results.len() as f64 / wall_s.max(1e-9);
    println!(
        "\n  {} jobs in {:.2}s = {:.2} jobs/sec; latency p50 {:.1} ms, p99 {:.1} ms",
        results.len(),
        wall_s,
        jobs_per_sec,
        p50,
        p99
    );

    // Determinism audit over the persisted store: every repeated workload
    // must have committed bit-identical virtual times.
    let final_stats = service.shutdown();
    let store = ResultStore::open(&store_path).expect("reopen result store");
    let groups = store.by_digest().expect("load result store");
    let repeated = groups.iter().filter(|g| g.completed().len() > 1).count();
    let bit_identical = groups.iter().all(|g| g.bit_identical());
    println!(
        "  determinism audit: {} workloads, {} with repeats, bit-identical: {}",
        groups.len(),
        repeated,
        bit_identical
    );
    let _ = std::fs::remove_file(&store_path);

    if let Some(path) = &args.json {
        write_json(
            path,
            &RunSummary {
                quick: args.quick,
                jobs,
                workers,
                wall_s,
                jobs_per_sec,
                p50_ms: p50,
                p99_ms: p99,
                rows: &rows,
                digest_groups: groups.len(),
                bit_identical,
            },
        );
    }

    if args.validate {
        // The CI pins: the service held its contract for a full batch.
        let mut failures = Vec::new();
        if rejected != 0
            || final_stats.rejected_queue_full != 0
            || final_stats.rejected_invalid != 0
        {
            failures.push(format!(
                "rejections: {} local, {} queue-full, {} invalid",
                rejected, final_stats.rejected_queue_full, final_stats.rejected_invalid
            ));
        }
        if final_stats.completed != jobs as u64 {
            failures.push(format!(
                "completed {} of {jobs} (cancelled {}, timed out {}, panicked {})",
                final_stats.completed,
                final_stats.cancelled,
                final_stats.timed_out,
                final_stats.panicked
            ));
        }
        if repeated == 0 {
            failures.push("no repeated workloads — determinism audit vacuous".into());
        }
        if !bit_identical {
            failures.push("repeated workloads were not bit-identical".into());
        }
        // Generous wall-clock bound: quick smoke jobs are tiny; anything
        // near this indicates a scheduling stall, not a slow simulation.
        let bound_ms = if args.quick { 60_000.0 } else { 600_000.0 };
        if p99 > bound_ms {
            failures.push(format!("p99 {p99:.0} ms over bound {bound_ms:.0} ms"));
        }
        if failures.is_empty() {
            println!("  validate: OK");
        } else {
            for f in &failures {
                eprintln!("  validate FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
