//! Fig. 12a: single-node exchange time vs communication specialization,
//! for 1, 2, and 6 ranks per node, with and without CUDA-aware MPI.
//!
//! Headline paper claims: at 6 ranks, full specialization is ~6x faster
//! than Staged-only and ~2x faster than CUDA-aware MPI; Staged-only
//! improves as ranks-per-node grows; enabling the Kernel method on top of
//! Peer has no visible effect.

use stencil_bench::{
    bench_args, fmt_ms, measure_exchange, tiers, tiers_cuda_aware, write_metrics_json,
    ExchangeConfig,
};

fn main() {
    let args = bench_args(1);
    let iters = args.iters;
    let mut last_report = None;
    // Fixed data per GPU: 512^3-ish per GPU as a single cube over 6 GPUs.
    let extent = (512f64 * 6f64.cbrt()).round() as u64;
    println!(
        "Fig. 12a — single-node specialization sweep ({extent}^3 domain, 4 SP quantities, r=2)"
    );
    println!(
        "--------------------------------------------------------------------------------------"
    );
    let mut staged6 = 0.0;
    let mut ca6 = 0.0;
    let mut full6 = 0.0;
    for rpn in [1usize, 2, 6] {
        println!("  -- {rpn} rank(s) per node --");
        for (name, m) in tiers() {
            // Collect the metrics artifact from the fully specialized 6-rank
            // run; metrics do not affect virtual time.
            let collect = args.metrics.is_some() && rpn == 6 && name == "+kernel";
            let cfg = ExchangeConfig::new(1, rpn, extent)
                .methods(m)
                .iters(iters)
                .metrics(collect);
            let r = measure_exchange(&cfg);
            if let Some(report) = r.metrics {
                last_report = Some(report);
            }
            println!(
                "  {:<16} {:<11} {}   {}",
                cfg.label(),
                name,
                fmt_ms(r.mean),
                r.plan
            );
            if rpn == 6 && name == "+remote" {
                staged6 = r.mean;
            }
            if rpn == 6 && name == "+kernel" {
                full6 = r.mean;
            }
        }
        for (name, m) in tiers_cuda_aware() {
            let cfg = ExchangeConfig::new(1, rpn, extent)
                .methods(m)
                .cuda_aware(true)
                .iters(iters);
            let r = measure_exchange(&cfg);
            println!(
                "  {:<16} {:<11} {}   {}",
                cfg.label(),
                name,
                fmt_ms(r.mean),
                r.plan
            );
            if rpn == 6 && name == "+remote/ca" {
                ca6 = r.mean;
            }
        }
    }
    println!();
    println!("  headline ratios at 6 ranks/node (paper in parentheses):");
    println!(
        "    specialization over STAGED:        {:.1}x  (6x)",
        staged6 / full6
    );
    println!(
        "    specialization over CUDA-aware:    {:.1}x  (2x)",
        ca6 / full6
    );
    if let (Some(path), Some(report)) = (args.metrics.as_deref(), last_report.as_ref()) {
        write_metrics_json(path, report);
    }
}
