//! Fig. 9: timeline of overlapped exchange operations on a single node —
//! a 512³ subdomain per GPU with four SP quantities, two MPI ranks.
//!
//! Emits an ASCII timeline to stdout and a Chrome trace
//! (`chrome://tracing` / Perfetto) to `fig9_trace.json`.

use gpusim::DataMode;
use mpisim::{run_world, WorldConfig};
use stencil_core::{DomainBuilder, Methods};
use topo::summit::summit_cluster;

fn main() {
    // Two ranks on one node, three GPUs each (the paper's run drove two
    // GPUs per rank on the 4-GPU partition of a Summit node; our node model
    // keeps all six GPUs).
    let extent = (512f64 * 6f64.cbrt()).round() as u64;
    let world = WorldConfig::new(summit_cluster(1), 2)
        .data_mode(DataMode::Virtual)
        .trace(true);
    let rep = run_world(world, move |ctx| {
        let dom = DomainBuilder::new([extent, extent, extent])
            .radius(2)
            .quantities(4)
            .methods(Methods::all())
            .build(ctx);
        ctx.barrier();
        dom.exchange(ctx);
    });
    println!("Fig. 9 — overlapped exchange timeline (1 node, 2 ranks, 6 GPUs, 512^3/GPU x 4 SP)");
    println!("----------------------------------------------------------------------------------");
    println!("legend: k=kernel (pack/unpack/self-exchange), m=memcpy (D2H/H2D/P2P), M=MPI\n");
    print!("{}", rep.trace_ascii.unwrap());
    let json = rep.trace_json.unwrap();
    let path = "fig9_trace.json";
    std::fs::write(path, &json).expect("write trace");
    println!(
        "\nfull trace written to {path} ({} KiB); load it in chrome://tracing",
        json.len() / 1024
    );
    println!("exchange completed at {}", rep.elapsed);
}
