//! mapperf — wall-clock solve time vs. mapping quality for the placement
//! ladder (ROADMAP item 1, `docs/PLACEMENT.md`).
//!
//! Two sweeps, both measuring the **solver itself** (pure compute, no
//! simulation):
//!
//! * `node/*` — per-node QAP placement across GPUs-per-node (6 = Summit's
//!   exhaustive regime, up to 64 = the fat-node ceiling the heuristic
//!   rungs exist for). Reports solve time and cost ratio vs. exhaustive
//!   where feasible (n ≤ 8), vs. the trivial identity placement otherwise.
//! * `global/*` — the topology-aware global mapping stage
//!   (`stencil_core::map_nodes`): multilevel solve of the node flow graph
//!   against a tapered Summit-style switch hierarchy, across node counts
//!   up to the full 4608-node machine.
//!
//! Flags:
//! * `--quick`      small shapes, one sample each (CI smoke).
//! * `--json PATH`  write results (with quality columns) as JSON.
//! * `--validate`   run the acceptance pins and exit non-zero on failure:
//!   64-GPU node solve < 50 ms, 4608-node global mapping < 5 s, and
//!   hierarchical cost within 1.05× of exhaustive on all n ≤ 8 instances.
//!
//! `BENCH_pr7.json` at the repo root is this suite's committed artifact.

use std::time::Instant;

use stencil_bench::microbench::{Bench, Summary};
use stencil_bench::weak_scaling_extent;
use stencil_core::dim3::Boundary;
use stencil_core::placement::{flow_matrix_bc, node_flow_graph};
use stencil_core::{multilevel, qap, Neighborhood, Partition, PlacementStrategy, Radius};
use topo::presets::fat_node;
use topo::{NodeDiscovery, SwitchHierarchy};

/// The fat-node preset for a GPUs-per-node point of the sweep.
fn node_preset(gpn: usize) -> (usize, usize, usize) {
    match gpn {
        6 => (2, 1, 3),  // Summit
        8 => (2, 1, 4),  // fat triads
        12 => (2, 2, 3), // the chaos degraded-fat-node shape
        16 => (2, 2, 4), // 4 islands of 4
        32 => (2, 4, 4), // 8 islands of 4
        64 => (2, 4, 8), // 8 islands of 8: the ladder's target ceiling
        _ => panic!("no preset for {gpn} GPUs per node"),
    }
}

/// Build the per-node QAP instance for a `gpn`-GPU node at paper-style
/// per-GPU volume: flow from the partition geometry, distances from
/// discovered topology.
fn node_instance(gpn: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let (s, i, g) = node_preset(gpn);
    let extent = weak_scaling_extent(750, gpn);
    let part = Partition::new([extent, extent, extent], 1, gpn);
    let w = flow_matrix_bc(
        &part,
        [0, 0, 0],
        Neighborhood::Full26,
        &Radius::constant(2),
        4,
        4,
        Boundary::Periodic,
    );
    let d = NodeDiscovery::discover(&fat_node(s, i, g)).distance_matrix();
    (w, d)
}

/// One row of the node sweep: time the ladder's auto rung and report
/// quality against the relevant yardstick.
struct NodeRow {
    summary: Summary,
    /// `solved cost / exhaustive cost` when n ≤ 8, else None.
    vs_exhaustive: Option<f64>,
    /// `solved cost / trivial cost` (≤ 1.0; lower is better).
    vs_trivial: f64,
}

fn node_sweep_row(b: &mut Bench, gpn: usize) -> NodeRow {
    let (w, d) = node_instance(gpn);
    let summary = b.run_summary(&format!("solve/{gpn}g"), || {
        let _ = PlacementStrategy::NodeAware.solve(&w, &d);
    });
    let (_, cost) = PlacementStrategy::NodeAware.solve(&w, &d);
    let (_, trivial) = PlacementStrategy::Trivial.solve(&w, &d);
    let vs_exhaustive = (gpn <= qap::EXHAUSTIVE_MAX_N).then(|| {
        let (_, ex) = qap::solve_exhaustive(&w, &d);
        cost / ex
    });
    NodeRow {
        summary,
        vs_exhaustive,
        vs_trivial: cost / trivial,
    }
}

/// Build the global mapping instance: node flow graph of a weak-scaled
/// partition plus the tapered switch hierarchy.
fn global_instance(nodes: usize) -> (multilevel::FlowGraph, SwitchHierarchy) {
    let extent = weak_scaling_extent(750, nodes * 6);
    let part = Partition::new([extent, extent, extent], nodes, 6);
    let flow = node_flow_graph(
        &part,
        Neighborhood::Full26,
        &Radius::constant(2),
        4,
        4,
        Boundary::Periodic,
    );
    (flow, SwitchHierarchy::summit_fat_tree(nodes))
}

struct GlobalRow {
    summary: Summary,
    /// `mapped cost / identity cost` (≤ 1.0; lower is better). Identity is
    /// the blind recursive-bisection order the mapping stage replaces.
    vs_identity: f64,
}

fn global_sweep_row(b: &mut Bench, nodes: usize) -> GlobalRow {
    let (flow, hier) = global_instance(nodes);
    let summary = b.run_summary(&format!("map/{nodes}n"), || {
        let _ = multilevel::solve_sparse(&flow, &hier);
    });
    let f = multilevel::solve_sparse(&flow, &hier);
    let mapped = flow.cost(&hier, &f);
    let identity: Vec<usize> = (0..flow.len()).collect();
    let id_cost = flow.cost(&hier, &identity);
    GlobalRow {
        summary,
        vs_identity: mapped / id_cost,
    }
}

/// Acceptance pins (ISSUE 7): exit non-zero if the ladder misses its
/// latency or quality bounds.
fn validate() -> bool {
    let mut ok = true;
    let mut check = |name: &str, pass: bool, detail: String| {
        println!(
            "  [{}] {name}: {detail}",
            if pass { "PASS" } else { "FAIL" }
        );
        ok &= pass;
    };

    // 1. Hierarchical within 1.05x of exhaustive on all n <= 8 instances
    //    (structurally exact: the ladder dispatches n <= 8 to exhaustive).
    let mut worst: f64 = 0.0;
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    };
    for n in 2..=qap::EXHAUSTIVE_MAX_N {
        for _ in 0..8 {
            let w: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..n).map(|_| (rnd() * 9.0).floor()).collect())
                .collect();
            let d: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..n).map(|_| rnd() + 0.05).collect())
                .collect();
            let (_, ex) = qap::solve_exhaustive(&w, &d);
            let (_, hi) = PlacementStrategy::Hierarchical.solve(&w, &d);
            if ex > 0.0 {
                worst = worst.max(hi / ex);
            }
        }
    }
    for gpn in [6, 8] {
        let (w, d) = node_instance(gpn);
        let (_, ex) = qap::solve_exhaustive(&w, &d);
        let (_, hi) = PlacementStrategy::Hierarchical.solve(&w, &d);
        worst = worst.max(hi / ex);
    }
    check(
        "quality n<=8",
        worst <= 1.05,
        format!("worst hierarchical/exhaustive ratio {worst:.4} (bound 1.05)"),
    );

    // 2. 64-GPUs-per-node placement solve under 50 ms.
    let (w, d) = node_instance(64);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let _ = PlacementStrategy::NodeAware.solve(&w, &d);
        best = best.min(t.elapsed().as_secs_f64());
    }
    check(
        "64-GPU node solve",
        best < 0.050,
        format!("{:.1} ms (bound 50 ms)", best * 1e3),
    );

    // 3. Full-machine (4608-node) global mapping under 5 s.
    let (flow, hier) = global_instance(4608);
    let t = Instant::now();
    let f = multilevel::solve_sparse(&flow, &hier);
    let elapsed = t.elapsed().as_secs_f64();
    let mapped = flow.cost(&hier, &f);
    let identity: Vec<usize> = (0..flow.len()).collect();
    let id_cost = flow.cost(&hier, &identity);
    check(
        "4608-node global mapping",
        elapsed < 5.0 && mapped <= id_cost * (1.0 + 1e-9),
        format!(
            "{elapsed:.2} s (bound 5 s), cost {:.3}x identity",
            mapped / id_cost
        ),
    );
    ok
}

struct Args {
    quick: bool,
    json: Option<String>,
    validate: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        json: None,
        validate: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => {
                args.quick = true;
                i += 1;
            }
            "--validate" => {
                args.validate = true;
                i += 1;
            }
            "--json" => {
                args.json = Some(
                    argv.get(i + 1)
                        .unwrap_or_else(|| panic!("--json needs a value"))
                        .clone(),
                );
                i += 2;
            }
            other => panic!("unknown flag {other} (expected --quick / --json PATH / --validate)"),
        }
    }
    args
}

fn write_json(path: &str, quick: bool, nodes: &[NodeRow], globals: &[GlobalRow]) {
    let mut s = String::new();
    s.push_str("{\n  \"suite\": \"mapperf\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"unit\": \"seconds (wall clock); cost ratios dimensionless\",\n");
    s.push_str("  \"benches\": [\n");
    let total = nodes.len() + globals.len();
    let mut k = 0;
    let mut push = |s: &mut String, entry: String| {
        k += 1;
        s.push_str(&entry);
        if k < total {
            s.push(',');
        }
        s.push('\n');
    };
    for r in nodes {
        let mut e = format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"mean_s\": {:.6}, \"min_s\": {:.6}, \"max_s\": {:.6}, \"cost_vs_trivial\": {:.4}",
            r.summary.name, r.summary.samples, r.summary.mean_s, r.summary.min_s, r.summary.max_s, r.vs_trivial
        );
        if let Some(v) = r.vs_exhaustive {
            e.push_str(&format!(", \"cost_vs_exhaustive\": {v:.4}"));
        }
        e.push('}');
        push(&mut s, e);
    }
    for r in globals {
        let e = format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"mean_s\": {:.6}, \"min_s\": {:.6}, \"max_s\": {:.6}, \"cost_vs_identity\": {:.4}}}",
            r.summary.name, r.summary.samples, r.summary.mean_s, r.summary.min_s, r.summary.max_s, r.vs_identity
        );
        push(&mut s, e);
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nresults written to {path}");
}

fn main() {
    let args = parse_args();
    let quick = args.quick;

    println!("mapperf — placement-ladder solve time vs. mapping quality");
    println!("=========================================================");

    println!("\nnode sweep (GPUs per node; NodeAware auto rung):");
    let mut b = Bench::new("node");
    b.sample_size(if quick { 1 } else { 3 });
    b.warmup(!quick);
    let gpns: &[usize] = if quick {
        &[6, 12, 64]
    } else {
        &[6, 8, 12, 16, 32, 64]
    };
    let mut node_rows = Vec::new();
    for &gpn in gpns {
        let row = node_sweep_row(&mut b, gpn);
        let yardstick = match row.vs_exhaustive {
            Some(v) => format!("{v:.4}x exhaustive"),
            None => format!("{:.4}x trivial", row.vs_trivial),
        };
        println!("    -> cost {yardstick}");
        node_rows.push(row);
    }

    println!("\nglobal sweep (nodes; multilevel vs. switch hierarchy):");
    let mut b = Bench::new("global");
    b.sample_size(1);
    b.warmup(false);
    let counts: &[usize] = if quick {
        &[64, 256]
    } else {
        &[256, 1024, 4608]
    };
    let mut global_rows = Vec::new();
    for &nodes in counts {
        let row = global_sweep_row(&mut b, nodes);
        println!("    -> cost {:.4}x identity", row.vs_identity);
        global_rows.push(row);
    }

    if let Some(path) = &args.json {
        write_json(path, quick, &node_rows, &global_rows);
    }

    if args.validate {
        println!("\nacceptance pins:");
        if !validate() {
            eprintln!("mapperf: validation FAILED");
            std::process::exit(1);
        }
        println!("mapperf: all pins hold");
    }
}
