//! Full-Summit weak-scaling sweep (Fig.-12b-style, beyond the paper's
//! largest plotted point): exchange time for ~750³ points per GPU from 256
//! nodes up to Summit's full 4608 nodes — 27,648 ranks, one coroutine each.
//!
//! The paper evaluates on Summit but plots weak scaling only to 256 nodes
//! (1536 GPUs). Under the coroutine rank runtime (`docs/RUNTIME.md`) a
//! 4608-node world is just 27,648 stack allocations, so the whole machine
//! fits in one simulation. Two method tiers bound the runtime: the
//! Staged-only baseline (`+remote`) and the fully specialized library
//! (`+kernel`) — the outer rows of Fig. 12b.
//!
//! Flags: `--max-nodes N` (default 4608), `--iters N` (default 2),
//! `--json PATH` to write the machine-readable artifact
//! (`BENCH_summit_fig12.json` at the repo root was produced this way; see
//! EXPERIMENTS.md for the exact command and runtime budget).

use std::sync::Arc;
use std::time::Instant;

use stencil_bench::{
    fmt_ms, measure_exchange, node_aware_placements, weak_scaling_extent, ExchangeConfig,
};
use stencil_core::Methods;

struct Row {
    nodes: usize,
    ranks: usize,
    extent: u64,
    staged_s: f64,
    specialized_s: f64,
    wall_s: f64,
}

fn main() {
    let mut max_nodes = 4608usize;
    let mut iters = 2usize;
    let mut json: Option<String> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let operand = |i: usize| -> String {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", argv[i]))
                .clone()
        };
        match argv[i].as_str() {
            "--max-nodes" => {
                max_nodes = operand(i).parse().expect("--max-nodes N");
                i += 2;
            }
            "--iters" => {
                iters = operand(i).parse().expect("--iters N");
                i += 2;
            }
            "--json" => {
                json = Some(operand(i));
                i += 2;
            }
            other => panic!("unknown flag {other} (expected --max-nodes / --iters / --json)"),
        }
    }

    println!("Full-Summit weak scaling — 750^3/GPU, 6 ranks x 6 GPUs per node, no CUDA-aware MPI");
    println!("(tiers: Staged-only vs fully specialized; wall = simulator time for the whole row)");
    println!(
        "-------------------------------------------------------------------------------------"
    );
    println!(
        "{:>6} {:>7} {:>8} | {:>12} {:>12} | speedup | {:>9}",
        "nodes", "ranks", "extent", "+remote", "+kernel", "wall"
    );
    let mut rows: Vec<Row> = Vec::new();
    for nodes in [256usize, 512, 1024, 2048, 4608] {
        if nodes > max_nodes {
            break;
        }
        let t0 = Instant::now();
        let extent = weak_scaling_extent(750, nodes * 6);
        // One partition/QAP solve per row, shared by both tiers.
        let pre = node_aware_placements(&ExchangeConfig::new(nodes, 6, extent));
        let tier = |m: Methods| {
            let cfg = ExchangeConfig::new(nodes, 6, extent)
                .methods(m)
                .iters(iters)
                .preplaced(Arc::clone(&pre));
            measure_exchange(&cfg).mean
        };
        let staged = tier(Methods::staged_only());
        let specialized = tier(Methods::all());
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "{:>6} {:>7} {:>8} | {} {} |  {:.2}x  | {:>8.1}s",
            nodes,
            nodes * 6,
            extent,
            fmt_ms(staged),
            fmt_ms(specialized),
            staged / specialized,
            wall
        );
        rows.push(Row {
            nodes,
            ranks: nodes * 6,
            extent,
            staged_s: staged,
            specialized_s: specialized,
            wall_s: wall,
        });
    }
    if let Some(last) = rows.last() {
        println!();
        println!(
            "  specialization speedup at {} nodes: {:.2}x  (paper reports 1.16x at its 256-node limit)",
            last.nodes,
            last.staged_s / last.specialized_s
        );
    }
    if let Some(path) = &json {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"suite\": \"summit-fig12\",\n");
        s.push_str("  \"config\": \"weak scaling 750^3/GPU, 6 ranks x 6 GPUs per node, periodic, radius 2, 4 quantities\",\n");
        s.push_str(&format!("  \"iters\": {iters},\n"));
        s.push_str("  \"units\": {\"staged_s\": \"virtual seconds\", \"specialized_s\": \"virtual seconds\", \"wall_s\": \"simulator wall-clock seconds per row\"},\n");
        s.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"nodes\": {}, \"ranks\": {}, \"extent\": {}, \"staged_s\": {:.9}, \"specialized_s\": {:.9}, \"speedup\": {:.3}, \"wall_s\": {:.1}}}{}\n",
                r.nodes,
                r.ranks,
                r.extent,
                r.staged_s,
                r.specialized_s,
                r.staged_s / r.specialized_s,
                r.wall_s,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        std::fs::write(path, s).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nartifact written to {path}");
    }
}
