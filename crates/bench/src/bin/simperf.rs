//! simperf — wall-clock performance suite for the **simulator itself**.
//!
//! Every other bench in this crate measures *virtual* time (what the paper
//! reports). This one measures how long the simulator takes in real time to
//! produce those virtual results, and is the repo's perf trajectory record:
//! run it before and after a kernel change and compare.
//!
//! Groups:
//! * `sched/*` — cooperative-scheduler churn: coroutine world spawn +
//!   teardown (up to the full-Summit 27,648-rank count) and token hand-off
//!   (`yield_now`) at 16/64/256-node rank counts.
//! * `event/*` — raw event-queue throughput (schedule + drain).
//! * `flow/*`  — flow-network churn: a single contended link (worst-case
//!   reshare fan-out) and a fabric-shaped link set at paper scales.
//! * `fig12b/*` — end-to-end: one fully-specialized weak-scaling exchange
//!   step, the shape behind the paper's Fig. 12b.
//!
//! Flags:
//! * `--quick`           tiny shapes, one sample each (CI smoke).
//! * `--json PATH`       write results as JSON.
//! * `--baseline PATH`   merge `min_s` numbers from an earlier `--json`
//!   artifact into the output as `baseline_min_s` + `speedup`.
//! * `--validate PATH`   parse a previously written JSON artifact and exit
//!   non-zero if it is malformed (used by `ci.sh bench-smoke`).
//!
//! `BENCH_pr2.json` and `BENCH_pr6.json` at the repo root were produced by
//! running this suite with `--baseline` pointed at a seed-kernel artifact,
//! so their `baseline_min_s`/`speedup` columns compare against the
//! original pre-optimization simulator. See `docs/PERFORMANCE.md`.

use std::sync::Arc;

use detsim::{Kernel, Sim, SimDuration};
use parking_lot::Mutex;
use stencil_bench::microbench::{Bench, Summary};
use stencil_bench::{measure_exchange, weak_scaling_extent, ExchangeConfig};

/// Deterministic 64-bit LCG (same constants as `flow_properties` tests).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Token hand-off churn: `threads` sim threads each yield `rounds` times.
fn sched_churn(threads: usize, rounds: usize) {
    let mut sim = Sim::new();
    sim.run(threads, move |ctx| {
        for _ in 0..rounds {
            ctx.yield_now();
        }
    });
}

/// Coroutine world spawn + teardown: one stack allocation and one token
/// round per rank, no work.
fn sched_spawn(threads: usize) {
    let mut sim = Sim::new();
    sim.run(threads, |_| {});
}

/// Schedule `n` closure events (in scheduling order) and drain the queue.
fn event_churn(n: usize) {
    let mut k = Kernel::new();
    let hits = Arc::new(Mutex::new(0u64));
    for i in 0..n {
        let hits = Arc::clone(&hits);
        k.schedule_in(SimDuration::from_nanos((i % 977) as u64), move |_| {
            *hits.lock() += 1;
        });
    }
    k.run_to_completion();
    assert_eq!(*hits.lock(), n as u64);
}

/// Worst-case reshare fan-out: every flow shares one link, so each
/// join/leave re-settles every other flow.
fn flow_contended(flows: usize) {
    let mut k = Kernel::new();
    let l = k.add_link("hot", 12.5e9, SimDuration::from_micros(1));
    let mut rng = Lcg(7);
    for i in 0..flows {
        let bytes = 200_000 + rng.below(400_000);
        k.schedule_in(SimDuration::from_nanos(i as u64 * 40), move |k| {
            k.start_flow(&[l], bytes, |_| {});
        });
    }
    k.run_to_completion();
    assert_eq!(k.active_flows(), 0);
}

/// Fabric-shaped churn at an `n`-node scale: per-node injection/ejection
/// links, `156 * n` transfers between deterministic-random node pairs
/// (26 neighbors x 6 ranks per node is the paper's message count).
fn flow_fabric(nodes: usize) {
    let mut k = Kernel::new();
    let inject: Vec<_> = (0..nodes)
        .map(|n| k.add_link(format!("n{n}.in"), 12.5e9, SimDuration::from_micros(1)))
        .collect();
    let eject: Vec<_> = (0..nodes)
        .map(|n| k.add_link(format!("n{n}.out"), 12.5e9, SimDuration::from_micros(1)))
        .collect();
    let mut rng = Lcg(42);
    for i in 0..(156 * nodes) {
        let src = rng.below(nodes as u64) as usize;
        let mut dst = rng.below(nodes as u64) as usize;
        if dst == src {
            dst = (dst + 1) % nodes;
        }
        let path = [inject[src], eject[dst]];
        let bytes = 1_000_000 + rng.below(4_000_000);
        // Bursty starts: whole wavefronts begin close together, like a
        // halo-exchange step.
        let at = SimDuration::from_nanos((i % 64) as u64 * 25);
        k.schedule_in(at, move |k| {
            k.start_flow(&path, bytes, |_| {});
        });
    }
    k.run_to_completion();
    assert_eq!(k.active_flows(), 0);
}

/// One fully-specialized fig12b weak-scaling step at `nodes` nodes.
fn fig12b_step(nodes: usize) {
    let extent = weak_scaling_extent(750, nodes * 6);
    let cfg = ExchangeConfig::new(nodes, 6, extent).iters(1);
    let r = measure_exchange(&cfg);
    assert!(r.mean > 0.0);
}

struct Args {
    quick: bool,
    json: Option<String>,
    baseline: Option<String>,
    validate: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        json: None,
        baseline: None,
        validate: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let operand = |i: usize| -> String {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", argv[i]))
                .clone()
        };
        match argv[i].as_str() {
            "--quick" => {
                args.quick = true;
                i += 1;
            }
            "--json" => {
                args.json = Some(operand(i));
                i += 2;
            }
            "--baseline" => {
                args.baseline = Some(operand(i));
                i += 2;
            }
            "--validate" => {
                args.validate = Some(operand(i));
                i += 2;
            }
            other => panic!(
                "unknown flag {other} (expected --quick / --json PATH / --baseline PATH / --validate PATH)"
            ),
        }
    }
    args
}

/// Extract `(name, min_s)` pairs from a simperf JSON artifact. Tiny
/// line-oriented scanner — the emitter writes one bench object per line.
fn parse_artifact(text: &str) -> Option<Vec<(String, f64)>> {
    if !text.contains("\"suite\": \"simperf\"") {
        return None;
    }
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with("{\"name\":") {
            continue;
        }
        let name = line.split('"').nth(3)?.to_string();
        let min_s = line
            .split("\"min_s\": ")
            .nth(1)?
            .split([',', '}'])
            .next()?
            .trim()
            .parse::<f64>()
            .ok()?;
        if !min_s.is_finite() || min_s < 0.0 {
            return None;
        }
        out.push((name, min_s));
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

fn write_json(path: &str, quick: bool, results: &[Summary], baseline: &[(String, f64)]) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"suite\": \"simperf\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"unit\": \"seconds (wall clock)\",\n");
    s.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        let mut entry = format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"mean_s\": {:.6}, \"min_s\": {:.6}, \"max_s\": {:.6}",
            r.name, r.samples, r.mean_s, r.min_s, r.max_s
        );
        if let Some((_, base)) = baseline.iter().find(|(n, _)| *n == r.name) {
            entry.push_str(&format!(
                ", \"baseline_min_s\": {:.6}, \"speedup\": {:.2}",
                base,
                base / r.min_s.max(1e-12)
            ));
        }
        entry.push('}');
        if i + 1 < results.len() {
            entry.push(',');
        }
        entry.push('\n');
        s.push_str(&entry);
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nresults written to {path}");
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.validate {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        match parse_artifact(&text) {
            Some(entries) => {
                println!("{path}: valid simperf artifact, {} benches", entries.len());
                return;
            }
            None => {
                eprintln!("{path}: not a valid simperf artifact");
                std::process::exit(1);
            }
        }
    }
    let baseline: Vec<(String, f64)> = match &args.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
            parse_artifact(&text).unwrap_or_else(|| panic!("{path}: not a simperf artifact"))
        }
        None => Vec::new(),
    };
    let quick = args.quick;
    let mut results: Vec<Summary> = Vec::new();

    let mut b = Bench::new("sched");
    b.sample_size(if quick { 1 } else { 3 });
    b.warmup(!quick);
    if quick {
        results.push(b.run_summary("spawn/24t", || sched_spawn(24)));
        results.push(b.run_summary("churn/24tx20", || sched_churn(24, 20)));
    } else {
        results.push(b.run_summary("spawn/1536t", || sched_spawn(1536)));
        results.push(b.run_summary("spawn/27648t", || sched_spawn(27648)));
        results.push(b.run_summary("churn/96tx200", || sched_churn(96, 200)));
        results.push(b.run_summary("churn/384tx50", || sched_churn(384, 50)));
        results.push(b.run_summary("churn/1536tx20", || sched_churn(1536, 20)));
    }

    let mut b = Bench::new("event");
    b.sample_size(if quick { 1 } else { 3 });
    b.warmup(!quick);
    if quick {
        results.push(b.run_summary("churn/100k", || event_churn(100_000)));
    } else {
        results.push(b.run_summary("churn/1m", || event_churn(1_000_000)));
    }

    let mut b = Bench::new("flow");
    b.sample_size(if quick { 1 } else { 2 });
    b.warmup(false);
    if quick {
        results.push(b.run_summary("contended/120f", || flow_contended(120)));
        results.push(b.run_summary("fabric/4n", || flow_fabric(4)));
    } else {
        results.push(b.run_summary("contended/600f", || flow_contended(600)));
        results.push(b.run_summary("fabric/16n", || flow_fabric(16)));
        results.push(b.run_summary("fabric/64n", || flow_fabric(64)));
        results.push(b.run_summary("fabric/256n", || flow_fabric(256)));
    }

    let mut b = Bench::new("fig12b");
    b.warmup(false);
    if quick {
        b.sample_size(1);
        results.push(b.run_summary("step/2n", || fig12b_step(2)));
    } else {
        b.sample_size(2);
        results.push(b.run_summary("step/16n", || fig12b_step(16)));
        results.push(b.run_summary("step/64n", || fig12b_step(64)));
        b.sample_size(1);
        results.push(b.run_summary("step/256n", || fig12b_step(256)));
    }

    if !baseline.is_empty() {
        println!("\nvs baseline:");
        for r in &results {
            if let Some((_, base)) = baseline.iter().find(|(n, _)| *n == r.name) {
                println!(
                    "  {:<24} {:>10.3}s -> {:>10.3}s   {:5.2}x",
                    r.name,
                    base,
                    r.min_s,
                    base / r.min_s.max(1e-12)
                );
            }
        }
    }
    if let Some(path) = &args.json {
        write_json(path, quick, &results, &baseline);
    }
}
