//! Fig. 12c: weak scaling *with* CUDA-aware MPI — the paper observes
//! severe degradation as nodes are added (the library serializes its
//! transfers on the default stream and synchronizes the device per
//! message), and intra-node specialization ceases to help.

use std::sync::Arc;

use stencil_bench::{
    bench_args, fmt_ms, measure_exchange, node_aware_placements, tiers_cuda_aware,
    weak_scaling_extent, write_metrics_json, ExchangeConfig,
};
use stencil_core::Methods;

fn main() {
    let args = bench_args(256);
    let iters = args.iters;
    println!("Fig. 12c — weak scaling, CUDA-aware MPI (750^3/GPU, 6 ranks x 6 GPUs per node)");
    println!("--------------------------------------------------------------------------------");
    println!(
        "{:>6} {:>8} | {:>12} {:>12} {:>12} {:>12} | {:>12}",
        "nodes", "extent", "+remote/ca", "+colo/ca", "+peer/ca", "+kernel/ca", "no-ca ref"
    );
    let mut first_ca = 0.0;
    let mut last_ca = 0.0;
    let mut last_ref = 0.0;
    let mut last_report = None;
    let ca_tiers = tiers_cuda_aware();
    for nodes in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        if nodes > args.max_nodes {
            break;
        }
        let extent = weak_scaling_extent(750, nodes * 6);
        // One QAP/partition solve per row, shared by the CA tiers and the
        // non-CA reference (placement is independent of CUDA-awareness).
        let pre = node_aware_placements(&ExchangeConfig::new(nodes, 6, extent));
        let mut row = Vec::new();
        for (i, (_, m)) in ca_tiers.iter().enumerate() {
            let collect = args.metrics.is_some() && i == ca_tiers.len() - 1;
            let cfg = ExchangeConfig::new(nodes, 6, extent)
                .methods(*m)
                .cuda_aware(true)
                .iters(iters)
                .metrics(collect)
                .preplaced(Arc::clone(&pre));
            let r = measure_exchange(&cfg);
            if let Some(report) = r.metrics {
                last_report = Some(report);
            }
            row.push(r.mean);
        }
        // non-CA staged reference for the same size
        let refc = ExchangeConfig::new(nodes, 6, extent)
            .methods(Methods::staged_only())
            .iters(iters)
            .preplaced(Arc::clone(&pre));
        let r = measure_exchange(&refc).mean;
        println!(
            "{:>6} {:>8} | {} {} {} {} | {}",
            nodes,
            extent,
            fmt_ms(row[0]),
            fmt_ms(row[1]),
            fmt_ms(row[2]),
            fmt_ms(row[3]),
            fmt_ms(r)
        );
        if nodes == 1 {
            first_ca = row[0];
        }
        last_ca = row[0];
        last_ref = r;
    }
    println!();
    println!(
        "  CUDA-aware degradation vs single node: {:.1}x; vs plain staged at largest scale: {:.2}x slower",
        last_ca / first_ca, last_ca / last_ref
    );
    if let (Some(path), Some(report)) = (args.metrics.as_deref(), last_report.as_ref()) {
        write_metrics_json(path, report);
    }
}
