//! Fig. 13: strong scaling — a fixed 1363³ domain (the largest with four
//! SP quantities that fits in one node) distributed over 1..256 nodes.
//!
//! Paper claims: exchange time drops from 1 to 128 nodes; capability
//! specialization stops improving things past ~32 nodes; strong scaling
//! stalls at 256 nodes as subdomains become tiny.

use std::sync::Arc;

use stencil_bench::{
    bench_args, fmt_ms, measure_exchange, node_aware_placements, tiers, write_metrics_json,
    ExchangeConfig,
};

fn main() {
    let args = bench_args(256);
    let iters = args.iters;
    let extent = 1363u64;
    println!("Fig. 13 — strong scaling of a {extent}^3 domain (4 SP quantities, 6r/6g per node)");
    println!("----------------------------------------------------------------------------------");
    println!(
        "{:>6} | {:>12} {:>12} {:>12} {:>12}",
        "nodes", "+remote", "+colo", "+peer", "+kernel"
    );
    let mut series = Vec::new();
    let mut last_report = None;
    let all_tiers = tiers();
    for nodes in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        if nodes > args.max_nodes {
            break;
        }
        // One QAP/partition solve per row, shared by all four method tiers.
        let pre = node_aware_placements(&ExchangeConfig::new(nodes, 6, extent));
        let mut row = Vec::new();
        for (i, (_, m)) in all_tiers.iter().enumerate() {
            let collect = args.metrics.is_some() && i == all_tiers.len() - 1;
            let cfg = ExchangeConfig::new(nodes, 6, extent)
                .methods(*m)
                .iters(iters)
                .metrics(collect)
                .preplaced(Arc::clone(&pre));
            let r = measure_exchange(&cfg);
            if let Some(report) = r.metrics {
                last_report = Some(report);
            }
            row.push(r.mean);
        }
        println!(
            "{:>6} | {} {} {} {}",
            nodes,
            fmt_ms(row[0]),
            fmt_ms(row[1]),
            fmt_ms(row[2]),
            fmt_ms(row[3])
        );
        series.push((nodes, row[3]));
    }
    println!();
    if series.len() >= 2 {
        let (n0, t0) = series[0];
        let (nl, tl) = *series.last().unwrap();
        println!(
            "  exchange time {} @ {} node(s) -> {} @ {} nodes",
            fmt_ms(t0),
            n0,
            fmt_ms(tl),
            nl
        );
    }
    if let (Some(path), Some(report)) = (args.metrics.as_deref(), last_report.as_ref()) {
        write_metrics_json(path, report);
    }
}
