//! Fig. 13: strong scaling — a fixed 1363³ domain (the largest with four
//! SP quantities that fits in one node) distributed over 1..256 nodes.
//!
//! Paper claims: exchange time drops from 1 to 128 nodes; capability
//! specialization stops improving things past ~32 nodes; strong scaling
//! stalls at 256 nodes as subdomains become tiny.

use stencil_bench::{bench_args, fmt_ms, measure_exchange, tiers, ExchangeConfig};

fn main() {
    let (max_nodes, iters) = bench_args(256);
    let extent = 1363u64;
    println!("Fig. 13 — strong scaling of a {extent}^3 domain (4 SP quantities, 6r/6g per node)");
    println!("----------------------------------------------------------------------------------");
    println!("{:>6} | {:>12} {:>12} {:>12} {:>12}", "nodes", "+remote", "+colo", "+peer", "+kernel");
    let mut series = Vec::new();
    for nodes in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        if nodes > max_nodes {
            break;
        }
        let mut row = Vec::new();
        for (_, m) in tiers() {
            let cfg = ExchangeConfig::new(nodes, 6, extent).methods(m).iters(iters);
            row.push(measure_exchange(&cfg).mean);
        }
        println!(
            "{:>6} | {} {} {} {}",
            nodes, fmt_ms(row[0]), fmt_ms(row[1]), fmt_ms(row[2]), fmt_ms(row[3])
        );
        series.push((nodes, row[3]));
    }
    println!();
    if series.len() >= 2 {
        let (n0, t0) = series[0];
        let (nl, tl) = *series.last().unwrap();
        println!("  exchange time {} @ {} node(s) -> {} @ {} nodes", fmt_ms(t0), n0, fmt_ms(tl), nl);
    }
}
