//! Ablation beyond the paper's figures: placement x specialization grid,
//! plus the QAP-solver comparison (exhaustive vs greedy+2-opt), isolating
//! each design choice's contribution on the Fig. 11 worst-case domain.

use stencil_bench::{
    bench_args, fmt_ms, measure_exchange, tiers, write_metrics_json, ExchangeConfig,
};
use stencil_core::dim3::Neighborhood;
use stencil_core::{placement, qap, Partition, PlacementStrategy, Radius};
use topo::summit::summit_node;
use topo::NodeDiscovery;

fn main() {
    let args = bench_args(1);
    let iters = args.iters;
    let mut last_report = None;
    let domain = [1440u64, 1452, 700];
    println!(
        "Ablation — placement x specialization on {}x{}x{} (1 node, 6 ranks)",
        domain[0], domain[1], domain[2]
    );
    println!("--------------------------------------------------------------------------");
    println!(
        "{:<12} | {:>12} {:>12} {:>12} {:>12}",
        "placement", "+remote", "+colo", "+peer", "+kernel"
    );
    for (pname, p) in [
        ("node-aware", PlacementStrategy::NodeAware),
        ("trivial", PlacementStrategy::Trivial),
    ] {
        let mut row = Vec::new();
        for (_, m) in tiers() {
            let cfg = ExchangeConfig::new(1, 6, 0)
                .domain(domain)
                .methods(m)
                .placement(p)
                .iters(iters);
            row.push(measure_exchange(&cfg).mean);
        }
        println!(
            "{:<12} | {} {} {} {}",
            pname,
            fmt_ms(row[0]),
            fmt_ms(row[1]),
            fmt_ms(row[2]),
            fmt_ms(row[3])
        );
    }
    println!();

    // Paper §VI, after [3]: "fewer, larger MPI messages tend to achieve
    // better performance, but our messages may already be few enough and
    // large enough." Test the conjecture: consolidate staged messages per
    // (subdomain, destination rank) at several scales.
    println!("Message consolidation (staged transfers grouped per subdomain+rank):");
    println!(
        "{:>6} | {:>12} {:>12} | ratio",
        "nodes", "plain", "consolidated"
    );
    for nodes in [2usize, 8, 32] {
        let extent = stencil_bench::weak_scaling_extent(750, nodes * 6);
        let plain = measure_exchange(
            &ExchangeConfig::new(nodes, 6, extent)
                .methods(stencil_core::Methods::all())
                .iters(iters),
        )
        .mean;
        // Collect the metrics artifact from the consolidated run at each
        // scale; the last (32-node) snapshot is the one written out.
        let gr = measure_exchange(
            &ExchangeConfig::new(nodes, 6, extent)
                .methods(stencil_core::Methods::all())
                .consolidate(true)
                .iters(iters)
                .metrics(args.metrics.is_some()),
        );
        if let Some(report) = gr.metrics {
            last_report = Some(report);
        }
        let grouped = gr.mean;
        println!(
            "{:>6} | {} {} | {:.3}x",
            nodes,
            fmt_ms(plain),
            fmt_ms(grouped),
            plain / grouped
        );
    }
    println!();

    println!("QAP solver comparison on the same instance:");
    let part = Partition::new(domain, 1, 6);
    let disc = NodeDiscovery::discover(&summit_node());
    let w = placement::flow_matrix(
        &part,
        [0, 0, 0],
        Neighborhood::Full26,
        &Radius::constant(2),
        4,
        4,
    );
    let d = disc.distance_matrix();
    let t0 = std::time::Instant::now();
    let (fe, ce) = qap::solve_exhaustive(&w, &d);
    let te = t0.elapsed();
    let t0 = std::time::Instant::now();
    let (fh, ch) = qap::solve_greedy_2opt(&w, &d);
    let th = t0.elapsed();
    println!("  exhaustive:  cost {ce:.4e}  assignment {fe:?}  ({te:?})");
    println!("  greedy+2opt: cost {ch:.4e}  assignment {fh:?}  ({th:?})");
    println!("  heuristic gap: {:.2}%", (ch / ce - 1.0) * 100.0);
    if let (Some(path), Some(report)) = (args.metrics.as_deref(), last_report.as_ref()) {
        write_metrics_json(path, report);
    }
}
