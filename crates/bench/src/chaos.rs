//! Resilience scenario harness shared by the `chaos` bench binary and the
//! degraded-triad acceptance test.
//!
//! The headline scenario follows the paper's premise in reverse: placement
//! matches exchange volume to link bandwidth, so when a link's bandwidth
//! collapses mid-run the placement is suddenly wrong. The harness runs the
//! same physical fault under three policies — keep the stale placement,
//! adapt ([`stencil_core::HealthMonitor`] +
//! `DistributedDomain::adapt_placement`), or rebuild from scratch against
//! the degraded substrate (the recovery target) — and reports steady-state
//! exchange times for each.

use std::sync::Arc;

use detsim::{MetricsReport, SimDuration};
use faultsim::FaultSchedule;
use gpusim::DataMode;
use mpisim::{run_world, WorldConfig};
use parking_lot::Mutex;
use stencil_core::dim3::Boundary;
use stencil_core::placement::flow_matrix_bc;
use stencil_core::{
    DomainBuilder, Health, HealthMonitor, Methods, Neighborhood, Partition, Placement,
    PlacementStrategy, Radius,
};
use topo::presets::fat_cluster;
use topo::summit::summit_cluster;
use topo::ClusterSpec;

use crate::{node_aware_placements_for, ExchangeConfig};

/// Policy for responding to the mid-run triad degradation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriadMode {
    /// Keep the pre-fault placement: the control arm showing the cost of
    /// not adapting.
    NoAdapt,
    /// Detect the degradation with a [`HealthMonitor`] and trigger
    /// adaptive re-placement.
    Adapt,
    /// Build the domain from scratch with empirical placement while the
    /// fault is already live — the fresh-optimal recovery target that
    /// adaptation is measured against.
    FreshOptimal,
}

/// Outcome of one degraded-triad run.
#[derive(Clone, Debug)]
pub struct TriadRun {
    /// Mean max-across-ranks exchange seconds before the fault (for
    /// [`TriadMode::FreshOptimal`] the fault is live from the start, so
    /// this is just its warmup under the degraded substrate).
    pub healthy_mean: f64,
    /// Mean max-across-ranks exchange seconds in the post-fault steady
    /// state (after adaptation, when the mode adapts).
    pub degraded_mean: f64,
    /// Whether adaptive re-placement ran and changed the placement.
    pub adapted: bool,
    /// Metrics snapshot of the run.
    pub metrics: Option<MetricsReport>,
}

/// The same-triad GPU pair carrying the most exchange volume under
/// `placement` — the highest-impact NVLink to degrade. Restricting to
/// same-triad pairs keeps the fault on a dedicated GPU-GPU link (a
/// cross-socket pair would degrade the shared X-Bus path instead).
pub fn heaviest_triad_pair(
    part: &Partition,
    placement: &Placement,
    radius: u64,
    quantities: usize,
) -> (usize, usize) {
    heaviest_island_pair(part, placement, radius, quantities, 3)
}

/// As [`heaviest_triad_pair`], for nodes whose NVLink islands hold
/// `gpus_per_island` GPUs each (Summit's triads are the 3-GPU case;
/// [`topo::presets::fat_node`] numbers GPUs island by island, so
/// `g / gpus_per_island` is the island index on both presets).
pub fn heaviest_island_pair(
    part: &Partition,
    placement: &Placement,
    radius: u64,
    quantities: usize,
    gpus_per_island: usize,
) -> (usize, usize) {
    let idx = part.node_from_linear(0);
    let w = flow_matrix_bc(
        part,
        idx,
        Neighborhood::Full26,
        &Radius::constant(radius),
        quantities,
        4,
        Boundary::Periodic,
    );
    let island = |g: usize| g / gpus_per_island;
    let mut best = (0usize, 1usize);
    let mut best_vol = -1.0f64;
    for (s, row) in w.iter().enumerate() {
        for t in (s + 1)..row.len() {
            let g1 = placement.gpu_for_subdomain[s];
            let g2 = placement.gpu_for_subdomain[t];
            if g1 == g2 || island(g1) != island(g2) {
                continue;
            }
            let vol = row[t] + w[t][s];
            if vol > best_vol {
                best_vol = vol;
                best = (g1.min(g2), g1.max(g2));
            }
        }
    }
    best
}

/// Run the degraded-triad scenario on one Summit node: build under a
/// healthy node-aware placement, degrade the placement's busiest NVLink to
/// `bandwidth_factor` × nominal mid-run, and respond per `mode`.
///
/// All three modes degrade the *same* physical link (the pair is chosen
/// from the healthy placement, computed purely up front), so their
/// steady-state times are directly comparable. Runs are deterministic:
/// same inputs, bit-identical times.
pub fn degraded_triad_run(
    domain: [u64; 3],
    ranks_per_node: usize,
    bandwidth_factor: f64,
    warmup_iters: usize,
    measure_iters: usize,
    mode: TriadMode,
) -> TriadRun {
    degraded_island_run(
        summit_cluster(1),
        3,
        1.25,
        domain,
        ranks_per_node,
        bandwidth_factor,
        warmup_iters,
        measure_iters,
        mode,
    )
}

/// The fat-node variant of the headline scenario: one 12-GPU node
/// ([`topo::presets::fat_node`]`(2, 2, 3)` — two NVLink islands per
/// socket), exercising the placement ladder's *heuristic* rung end to end
/// (12 > `qap::EXHAUSTIVE_MAX_N`, so both the initial placement and
/// `adapt_placement`'s parallel re-solve run delta-2-opt/multilevel, not
/// exhaustive search). Detection threshold is lower than the triad run's
/// because 10 unaffected ranks dilute the degraded pair in the mean.
pub fn degraded_fat_node_run(
    domain: [u64; 3],
    bandwidth_factor: f64,
    warmup_iters: usize,
    measure_iters: usize,
    mode: TriadMode,
) -> TriadRun {
    degraded_island_run(
        fat_cluster(1, 2, 2, 3),
        3,
        1.05,
        domain,
        12,
        bandwidth_factor,
        warmup_iters,
        measure_iters,
        mode,
    )
}

/// Run the degraded-island scenario on one node of an arbitrary cluster
/// preset: build under a healthy node-aware placement, degrade the
/// placement's busiest intra-island NVLink to `bandwidth_factor` ×
/// nominal mid-run, and respond per `mode`. `monitor_threshold` is the
/// [`HealthMonitor`] degradation factor (how much the fleet-mean exchange
/// time must exceed baseline — scale it down for nodes with many
/// unaffected ranks). See [`degraded_triad_run`] for the Summit headline
/// configuration.
#[allow(clippy::too_many_arguments)] // scenario knobs, mirrors degraded_triad_run
pub fn degraded_island_run(
    cluster: ClusterSpec,
    gpus_per_island: usize,
    monitor_threshold: f64,
    domain: [u64; 3],
    ranks_per_node: usize,
    bandwidth_factor: f64,
    warmup_iters: usize,
    measure_iters: usize,
    mode: TriadMode,
) -> TriadRun {
    assert!(warmup_iters >= 1 && measure_iters >= 1);
    let gpn = cluster.node.num_gpus();
    let cfg = ExchangeConfig::new(1, ranks_per_node, 0).domain(domain);
    let healthy = node_aware_placements_for(&cfg, &cluster.node);
    let part = Partition::new(domain, 1, gpn);
    let (a, b) = heaviest_island_pair(
        &part,
        &healthy[0],
        cfg.radius,
        cfg.quantities,
        gpus_per_island,
    );
    let fault = FaultSchedule::degraded_triad(0, a, b, SimDuration::ZERO, bandwidth_factor);

    let num_ranks = ranks_per_node;
    let healthy_times: Arc<Mutex<Vec<Vec<f64>>>> =
        Arc::new(Mutex::new(vec![Vec::new(); num_ranks]));
    let degraded_times: Arc<Mutex<Vec<Vec<f64>>>> =
        Arc::new(Mutex::new(vec![Vec::new(); num_ranks]));
    let adapted_flag = Arc::new(Mutex::new(false));
    let (ht, dt, af) = (
        Arc::clone(&healthy_times),
        Arc::clone(&degraded_times),
        Arc::clone(&adapted_flag),
    );

    let mut world = WorldConfig::new(cluster, ranks_per_node)
        .data_mode(DataMode::Virtual)
        .metrics(true);
    if mode == TriadMode::FreshOptimal {
        // The fault precedes the build, so the empirical probes measure the
        // degraded substrate and placement is optimal *for it*.
        world = world.faults(fault.clone());
    }
    let radius = cfg.radius;
    let quantities = cfg.quantities;
    let report = run_world(world, move |ctx| {
        let mut builder = DomainBuilder::new(domain)
            .radius(radius)
            .quantities(quantities)
            .neighborhood(Neighborhood::Full26)
            .methods(Methods::all());
        builder = match mode {
            TriadMode::FreshOptimal => builder.placement(PlacementStrategy::Empirical),
            _ => builder.preplaced(Arc::clone(&healthy)),
        };
        let mut dom = builder.build(ctx);
        // One window per iteration; baseline = mean of the warmup windows.
        // The exchange histogram averages every rank's critical path, so a
        // fault on one link is diluted by the unaffected ranks — 1.25x of
        // baseline is already a large, localized hit (and the simulation is
        // deterministic, so healthy windows sit exactly on the baseline).
        let mut monitor = HealthMonitor::new(monitor_threshold, warmup_iters);

        let mut mine = Vec::with_capacity(warmup_iters);
        for _ in 0..warmup_iters {
            ctx.barrier();
            let t0 = ctx.wtime();
            dom.exchange(ctx);
            mine.push(ctx.wtime() - t0);
            // Barrier-synchronized checkpoint: every rank sees the same
            // registry and reaches the same verdict.
            ctx.barrier();
            monitor.check(ctx);
        }
        ht.lock()[ctx.rank()] = mine;

        if mode != TriadMode::FreshOptimal {
            // Inject mid-run: one rank schedules the degradation at the
            // current virtual time; the surrounding barriers make sure no
            // rank races ahead of the installation.
            ctx.barrier();
            if ctx.rank() == 0 {
                let machine = ctx.machine().clone();
                ctx.sim().with_kernel(|k| {
                    let now = k.now();
                    fault.install_at(k, &machine, now);
                });
            }
            ctx.barrier();
            // Detection phase: the monitor flags the slowdown and (in
            // adapt mode) the domain re-places itself.
            for _ in 0..2 {
                ctx.barrier();
                dom.exchange(ctx);
                ctx.barrier();
                let health = monitor.check(ctx);
                if mode == TriadMode::Adapt {
                    if let Health::Degraded { .. } = health {
                        if dom.adapt_placement(ctx) {
                            *af.lock() = true;
                        }
                        monitor.rebaseline();
                    }
                }
            }
        }

        let mut mine = Vec::with_capacity(measure_iters);
        for _ in 0..measure_iters {
            ctx.barrier();
            let t0 = ctx.wtime();
            dom.exchange(ctx);
            mine.push(ctx.wtime() - t0);
        }
        dt.lock()[ctx.rank()] = mine;
    });

    let mean_of = |per_rank: &[Vec<f64>], iters: usize| {
        let per_iter: Vec<f64> = (0..iters)
            .map(|i| per_rank.iter().map(|r| r[i]).fold(0.0f64, f64::max))
            .collect();
        per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64
    };
    let healthy_mean = mean_of(&healthy_times.lock(), warmup_iters);
    let degraded_mean = mean_of(&degraded_times.lock(), measure_iters);
    let adapted = *adapted_flag.lock();
    TriadRun {
        healthy_mean,
        degraded_mean,
        adapted,
        metrics: report.metrics,
    }
}
