//! Resilience scenario harness shared by the `chaos` bench binary and the
//! degraded-triad / kill-respawn acceptance tests.
//!
//! The headline scenarios follow the paper's premise in reverse: placement
//! matches exchange volume to link bandwidth, so when a link's bandwidth
//! collapses mid-run — or a rank dies and takes its placement state with
//! it — the placement is suddenly wrong. The harness runs the same
//! physical fault under several policies — keep the stale placement, adapt
//! ([`stencil_core::AdaptPolicy`] + `DistributedDomain::adapt`), or
//! rebuild from scratch against the degraded substrate (the recovery
//! target) — and reports steady-state exchange times for each.

use std::sync::Arc;

use detsim::{MetricsReport, SimDuration};
use faultsim::FaultSchedule;
use gpusim::DataMode;
use mpisim::{run_world, WorldConfig};
use parking_lot::Mutex;
use stencil_core::dim3::Boundary;
use stencil_core::placement::flow_matrix_bc;
use stencil_core::{
    AdaptOutcome, AdaptPolicy, AdaptScope, DomainBuilder, Methods, MigrationMode, Neighborhood,
    Partition, Placement, PlacementStrategy, Radius,
};
use topo::presets::fat_cluster;
use topo::summit::summit_cluster;
use topo::ClusterSpec;

use crate::{node_aware_placements_for, ExchangeConfig};

/// Policy for responding to the mid-run triad degradation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriadMode {
    /// Keep the pre-fault placement: the control arm showing the cost of
    /// not adapting.
    NoAdapt,
    /// Detect the degradation with a [`stencil_core::HealthMonitor`] and
    /// trigger adaptive re-placement.
    Adapt,
    /// Build the domain from scratch with empirical placement while the
    /// fault is already live — the fresh-optimal recovery target that
    /// adaptation is measured against.
    FreshOptimal,
}

/// Outcome of one degraded-triad run.
#[derive(Clone, Debug)]
pub struct TriadRun {
    /// Mean max-across-ranks exchange seconds before the fault (for
    /// [`TriadMode::FreshOptimal`] the fault is live from the start, so
    /// this is just its warmup under the degraded substrate).
    pub healthy_mean: f64,
    /// Mean max-across-ranks exchange seconds in the post-fault steady
    /// state (after adaptation, when the mode adapts).
    pub degraded_mean: f64,
    /// Whether adaptive re-placement ran and changed the placement.
    pub adapted: bool,
    /// Metrics snapshot of the run.
    pub metrics: Option<MetricsReport>,
}

/// The same-triad GPU pair carrying the most exchange volume under
/// `placement` — the highest-impact NVLink to degrade. Restricting to
/// same-triad pairs keeps the fault on a dedicated GPU-GPU link (a
/// cross-socket pair would degrade the shared X-Bus path instead).
pub fn heaviest_triad_pair(
    part: &Partition,
    placement: &Placement,
    radius: u64,
    quantities: usize,
) -> (usize, usize) {
    heaviest_island_pair(part, placement, radius, quantities, 3)
}

/// As [`heaviest_triad_pair`], for nodes whose NVLink islands hold
/// `gpus_per_island` GPUs each (Summit's triads are the 3-GPU case;
/// [`topo::presets::fat_node`] numbers GPUs island by island, so
/// `g / gpus_per_island` is the island index on both presets).
pub fn heaviest_island_pair(
    part: &Partition,
    placement: &Placement,
    radius: u64,
    quantities: usize,
    gpus_per_island: usize,
) -> (usize, usize) {
    heaviest_island_pair_at(part, placement, 0, radius, quantities, gpus_per_island)
}

/// As [`heaviest_island_pair`], against the flow matrix of an arbitrary
/// node (the linear node index) — for faults aimed at nodes other than 0.
pub fn heaviest_island_pair_at(
    part: &Partition,
    placement: &Placement,
    node: usize,
    radius: u64,
    quantities: usize,
    gpus_per_island: usize,
) -> (usize, usize) {
    let idx = part.node_from_linear(node);
    let w = flow_matrix_bc(
        part,
        idx,
        Neighborhood::Full26,
        &Radius::constant(radius),
        quantities,
        4,
        Boundary::Periodic,
    );
    let island = |g: usize| g / gpus_per_island;
    let mut best = (0usize, 1usize);
    let mut best_vol = -1.0f64;
    for (s, row) in w.iter().enumerate() {
        for t in (s + 1)..row.len() {
            let g1 = placement.gpu_for_subdomain[s];
            let g2 = placement.gpu_for_subdomain[t];
            if g1 == g2 || island(g1) != island(g2) {
                continue;
            }
            let vol = row[t] + w[t][s];
            if vol > best_vol {
                best_vol = vol;
                best = (g1.min(g2), g1.max(g2));
            }
        }
    }
    best
}

/// Run the degraded-triad scenario on one Summit node: build under a
/// healthy node-aware placement, degrade the placement's busiest NVLink to
/// `bandwidth_factor` × nominal mid-run, and respond per `mode`.
///
/// All three modes degrade the *same* physical link (the pair is chosen
/// from the healthy placement, computed purely up front), so their
/// steady-state times are directly comparable. Runs are deterministic:
/// same inputs, bit-identical times.
pub fn degraded_triad_run(
    domain: [u64; 3],
    ranks_per_node: usize,
    bandwidth_factor: f64,
    warmup_iters: usize,
    measure_iters: usize,
    mode: TriadMode,
) -> TriadRun {
    degraded_island_run(
        summit_cluster(1),
        3,
        1.25,
        domain,
        ranks_per_node,
        bandwidth_factor,
        warmup_iters,
        measure_iters,
        mode,
    )
}

/// The fat-node variant of the headline scenario: one 12-GPU node
/// ([`topo::presets::fat_node`]`(2, 2, 3)` — two NVLink islands per
/// socket), exercising the placement ladder's *heuristic* rung end to end
/// (12 > `qap::EXHAUSTIVE_MAX_N`, so both the initial placement and
/// `DistributedDomain::adapt`'s parallel re-solve run delta-2-opt/
/// multilevel, not exhaustive search). Detection threshold is lower than
/// the triad run's
/// because 10 unaffected ranks dilute the degraded pair in the mean.
pub fn degraded_fat_node_run(
    domain: [u64; 3],
    bandwidth_factor: f64,
    warmup_iters: usize,
    measure_iters: usize,
    mode: TriadMode,
) -> TriadRun {
    degraded_island_run(
        fat_cluster(1, 2, 2, 3),
        3,
        1.05,
        domain,
        12,
        bandwidth_factor,
        warmup_iters,
        measure_iters,
        mode,
    )
}

/// Run the degraded-island scenario on one node of an arbitrary cluster
/// preset: build under a healthy node-aware placement, degrade the
/// placement's busiest intra-island NVLink to `bandwidth_factor` ×
/// nominal mid-run, and respond per `mode`. `monitor_threshold` is the
/// [`stencil_core::HealthMonitor`] degradation factor (how much the
/// fleet-mean exchange
/// time must exceed baseline — scale it down for nodes with many
/// unaffected ranks). See [`degraded_triad_run`] for the Summit headline
/// configuration.
#[allow(clippy::too_many_arguments)] // scenario knobs, mirrors degraded_triad_run
pub fn degraded_island_run(
    cluster: ClusterSpec,
    gpus_per_island: usize,
    monitor_threshold: f64,
    domain: [u64; 3],
    ranks_per_node: usize,
    bandwidth_factor: f64,
    warmup_iters: usize,
    measure_iters: usize,
    mode: TriadMode,
) -> TriadRun {
    assert!(warmup_iters >= 1 && measure_iters >= 1);
    let gpn = cluster.node.num_gpus();
    let cfg = ExchangeConfig::new(1, ranks_per_node, 0).domain(domain);
    let healthy = node_aware_placements_for(&cfg, &cluster.node);
    let part = Partition::new(domain, 1, gpn);
    let (a, b) = heaviest_island_pair(
        &part,
        &healthy[0],
        cfg.radius,
        cfg.quantities,
        gpus_per_island,
    );
    let fault = FaultSchedule::degraded_triad(0, a, b, SimDuration::ZERO, bandwidth_factor);

    let num_ranks = ranks_per_node;
    let healthy_times: Arc<Mutex<Vec<Vec<f64>>>> =
        Arc::new(Mutex::new(vec![Vec::new(); num_ranks]));
    let degraded_times: Arc<Mutex<Vec<Vec<f64>>>> =
        Arc::new(Mutex::new(vec![Vec::new(); num_ranks]));
    let adapted_flag = Arc::new(Mutex::new(false));
    let (ht, dt, af) = (
        Arc::clone(&healthy_times),
        Arc::clone(&degraded_times),
        Arc::clone(&adapted_flag),
    );

    let mut world = WorldConfig::new(cluster, ranks_per_node)
        .data_mode(DataMode::Virtual)
        .metrics(true);
    if mode == TriadMode::FreshOptimal {
        // The fault precedes the build, so the empirical probes measure the
        // degraded substrate and placement is optimal *for it*.
        world = world.faults(fault.clone());
    }
    let radius = cfg.radius;
    let quantities = cfg.quantities;
    let report = run_world(world, move |ctx| {
        let mut builder = DomainBuilder::new(domain)
            .radius(radius)
            .quantities(quantities)
            .neighborhood(Neighborhood::Full26)
            .methods(Methods::all());
        builder = match mode {
            TriadMode::FreshOptimal => builder.placement(PlacementStrategy::Empirical),
            _ => builder.preplaced(Arc::clone(&healthy)),
        };
        let mut dom = builder.build(ctx);
        // One window per iteration; baseline = mean of the warmup windows.
        // The exchange histogram averages every rank's critical path, so a
        // fault on one link is diluted by the unaffected ranks — 1.25x of
        // baseline is already a large, localized hit (and the simulation is
        // deterministic, so healthy windows sit exactly on the baseline).
        let mut monitor = AdaptPolicy::new()
            .threshold(monitor_threshold)
            .warmup_windows(warmup_iters)
            .monitor();

        let mut mine = Vec::with_capacity(warmup_iters);
        for _ in 0..warmup_iters {
            ctx.barrier();
            let t0 = ctx.wtime();
            dom.exchange(ctx);
            mine.push(ctx.wtime() - t0);
            // Barrier-synchronized checkpoint: every rank sees the same
            // registry and reaches the same verdict.
            ctx.barrier();
            monitor.check(ctx);
        }
        ht.lock()[ctx.rank()] = mine;

        if mode != TriadMode::FreshOptimal {
            // Inject mid-run: one rank schedules the degradation at the
            // current virtual time; the surrounding barriers make sure no
            // rank races ahead of the installation.
            ctx.barrier();
            if ctx.rank() == 0 {
                let machine = ctx.machine().clone();
                ctx.sim().with_kernel(|k| {
                    let now = k.now();
                    fault.install_at(k, &machine, now);
                });
            }
            ctx.barrier();
            // Detection phase: the monitor flags the slowdown and (in
            // adapt mode) the domain re-places itself.
            for _ in 0..2 {
                ctx.barrier();
                dom.exchange(ctx);
                ctx.barrier();
                if mode == TriadMode::Adapt {
                    if let AdaptOutcome::Migrated { .. } = dom.adapt(ctx, &mut monitor) {
                        *af.lock() = true;
                    }
                } else {
                    monitor.check(ctx);
                }
            }
        }

        let mut mine = Vec::with_capacity(measure_iters);
        for _ in 0..measure_iters {
            ctx.barrier();
            let t0 = ctx.wtime();
            dom.exchange(ctx);
            mine.push(ctx.wtime() - t0);
        }
        dt.lock()[ctx.rank()] = mine;
    });

    let mean_of = |per_rank: &[Vec<f64>], iters: usize| {
        let per_iter: Vec<f64> = (0..iters)
            .map(|i| per_rank.iter().map(|r| r[i]).fold(0.0f64, f64::max))
            .collect();
        per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64
    };
    let healthy_mean = mean_of(&healthy_times.lock(), warmup_iters);
    let degraded_mean = mean_of(&degraded_times.lock(), measure_iters);
    let adapted = *adapted_flag.lock();
    TriadRun {
        healthy_mean,
        degraded_mean,
        adapted,
        metrics: report.metrics,
    }
}

/// Policy for responding to the correlated kill-respawn fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Rejoin after the respawn but keep the stale placement: the control
    /// arm showing the cost of ignoring the correlated link degradation.
    NoAdapt,
    /// Rejoin, then adapt with the naive policy: global re-probe/re-solve
    /// and [`MigrationMode::StopTheWorld`] migration.
    StopTheWorldAdapt,
    /// Rejoin, then adapt with the full policy: per-link localization
    /// ([`AdaptScope::Localized`]) and [`MigrationMode::Overlapped`]
    /// migration.
    OverlappedAdapt,
    /// Build from scratch with empirical placement while the degradation
    /// is already live (no kill) — the fresh-optimal recovery target.
    FreshOptimal,
}

/// Outcome of one kill-respawn recovery run.
#[derive(Clone, Debug)]
pub struct RecoveryRun {
    /// Mean max-across-ranks exchange seconds before the fault (for
    /// [`RecoveryMode::FreshOptimal`], under the already-degraded
    /// substrate).
    pub healthy_mean: f64,
    /// Mean max-across-ranks exchange seconds in the recovered steady
    /// state.
    pub steady_mean: f64,
    /// Max-across-ranks virtual seconds from the fault installation to the
    /// end of the reaction phase (down-window + rejoin + detection +
    /// migration).
    pub recovery_secs: f64,
    /// Max-across-ranks virtual seconds spent inside the `adapt` call that
    /// migrated (probe + re-solve + data movement); `0.0` when nothing
    /// migrated.
    pub migrate_secs: f64,
    /// Whether adaptation migrated the placement.
    pub adapted: bool,
    /// The [`AdaptOutcome::Migrated`] `node` field: `Some(Some(n))` when
    /// localization re-solved only node `n`, `Some(None)` for a global
    /// re-solve, `None` when nothing migrated.
    pub adapted_node: Option<Option<usize>>,
    /// Metrics snapshot of the run.
    pub metrics: Option<MetricsReport>,
}

/// Run the correlated kill-respawn (or OOM-respawn, with `oom`) scenario
/// on two Summit nodes, 3 ranks each: rank 4 dies mid-run while — same
/// root cause, think a failing PCIe riser — node 1's busiest placed NVLink
/// drops to 2% and the inter-node switch to 70% of nominal. The rank
/// respawns 300 virtual µs later with its device data gone, rejoins via
/// `DistributedDomain::rejoin_after_respawn` (the re-handshake over the
/// revoked communicator), and the world reacts per `mode`.
///
/// With `oom`, the kill is an OOM event: the victim's first device shrinks
/// to 5% memory for the down-window (its post-death allocations fail), and
/// is restored just before the respawn.
///
/// All modes share the physical fault, so steady-state times are directly
/// comparable; runs are deterministic, so repeated runs are bit-identical.
pub fn kill_recovery_run(
    domain: [u64; 3],
    warmup_iters: usize,
    measure_iters: usize,
    mode: RecoveryMode,
    oom: bool,
) -> RecoveryRun {
    assert!(warmup_iters >= 1 && measure_iters >= 1);
    let cluster = summit_cluster(2);
    let ranks_per_node = 3;
    let num_ranks = 2 * ranks_per_node;
    let victim = 4usize; // node 1, local rank 1 -> devices 8 and 9
    let victim_device = 8usize;
    let kill_at = SimDuration::from_micros(50);
    let down_for = SimDuration::from_micros(300);
    let gpn = cluster.node.num_gpus();

    let cfg = ExchangeConfig::new(2, ranks_per_node, 0).domain(domain);
    let healthy = node_aware_placements_for(&cfg, &cluster.node);
    let part = Partition::new(domain, 2, gpn);
    // Aim the link degradation at node 1's busiest placed NVLink so the
    // stale placement really is wrong afterwards.
    let (a, b) = heaviest_island_pair_at(&part, &healthy[1], 1, cfg.radius, cfg.quantities, 3);
    // 2% NVLink bandwidth: with two nodes the inter-node leg dominates the
    // critical path, so a milder intra-node degradation would hide behind
    // it and never clear the detection threshold.
    let degrade = |at: SimDuration| {
        FaultSchedule::degraded_triad(1, a, b, at, 0.02)
            .merge(FaultSchedule::degraded_switch(0, 2, at, 0.7))
    };
    let fault = degrade(kill_at).merge(if oom {
        FaultSchedule::oom_respawn(victim_device, victim, kill_at, down_for, 0.05)
    } else {
        FaultSchedule::kill_respawn(victim, kill_at, down_for)
    });

    let radius = cfg.radius;
    let quantities = cfg.quantities;
    let healthy_times: Arc<Mutex<Vec<Vec<f64>>>> =
        Arc::new(Mutex::new(vec![Vec::new(); num_ranks]));
    let steady_times: Arc<Mutex<Vec<Vec<f64>>>> = Arc::new(Mutex::new(vec![Vec::new(); num_ranks]));
    let recovery_secs = Arc::new(Mutex::new(vec![0.0f64; num_ranks]));
    let migrate_secs = Arc::new(Mutex::new(vec![0.0f64; num_ranks]));
    let adapted_node: Arc<Mutex<Option<Option<usize>>>> = Arc::new(Mutex::new(None));
    let (ht, st, rs, ms, an) = (
        Arc::clone(&healthy_times),
        Arc::clone(&steady_times),
        Arc::clone(&recovery_secs),
        Arc::clone(&migrate_secs),
        Arc::clone(&adapted_node),
    );

    let mut world = WorldConfig::new(cluster, ranks_per_node)
        .data_mode(DataMode::Virtual)
        .metrics(true);
    if mode == RecoveryMode::FreshOptimal {
        world = world.faults(degrade(SimDuration::ZERO));
    }
    let report = run_world(world, move |ctx| {
        let me = ctx.rank();
        let mut builder = DomainBuilder::new(domain)
            .radius(radius)
            .quantities(quantities)
            .neighborhood(Neighborhood::Full26)
            .methods(Methods::all());
        builder = match mode {
            RecoveryMode::FreshOptimal => builder.placement(PlacementStrategy::Empirical),
            _ => builder.preplaced(Arc::clone(&healthy)),
        };
        let mut dom = builder.build(ctx);
        let mut monitor = match mode {
            RecoveryMode::StopTheWorldAdapt => AdaptPolicy::new()
                .warmup_windows(warmup_iters)
                .scope(AdaptScope::Global)
                .mode(MigrationMode::StopTheWorld),
            _ => AdaptPolicy::new()
                .warmup_windows(warmup_iters)
                .scope(AdaptScope::Localized)
                .mode(MigrationMode::Overlapped),
        }
        .monitor();

        let mut mine = Vec::with_capacity(warmup_iters);
        for _ in 0..warmup_iters {
            ctx.barrier();
            let t0 = ctx.wtime();
            dom.exchange(ctx);
            mine.push(ctx.wtime() - t0);
            ctx.barrier();
            monitor.check(ctx);
        }
        ht.lock()[me] = mine;

        if mode != RecoveryMode::FreshOptimal {
            // Install the correlated fault mid-run: kill + link + switch
            // degradation, one event table, one root cause.
            ctx.barrier();
            let t_fault = ctx.wtime();
            if me == 0 {
                let now = ctx.sim().with_kernel(|k| k.now());
                ctx.install_faults_at(&fault, now);
            }
            ctx.barrier();
            // Step past the kill instant so every rank observes the death.
            ctx.sim().delay(kill_at + SimDuration::from_micros(10));
            if !ctx.is_alive(me) {
                // We are the simulated casualty: device state is gone.
                dom.abandon_local_state(ctx);
                if oom {
                    // The OOM that killed us also shrank the device; until
                    // the restore, allocations keep failing.
                    let limit = ctx.machine().device_mem_limit(victim_device);
                    let err = ctx.machine().alloc_device_untimed(victim_device, limit + 1);
                    assert!(
                        matches!(err, Err(gpusim::GpuError::OutOfMemory { .. })),
                        "post-OOM allocation should fail while the device is shrunk"
                    );
                }
                ctx.await_respawn(me);
            } else {
                ctx.await_all_alive();
            }
            ctx.barrier();
            // Whole world again: re-handshake and reallocate the victim.
            dom.rejoin_after_respawn(ctx);

            // Detection + reaction: the placement is stale against the
            // degraded NVLink; adapt modes find and fix it.
            let mut my_migrate = 0.0f64;
            for _ in 0..2 {
                ctx.barrier();
                dom.exchange(ctx);
                ctx.barrier();
                if mode == RecoveryMode::NoAdapt {
                    monitor.check(ctx);
                } else {
                    let t0 = ctx.wtime();
                    if let AdaptOutcome::Migrated { node, .. } = dom.adapt(ctx, &mut monitor) {
                        my_migrate = ctx.wtime() - t0;
                        *an.lock() = Some(node);
                    }
                }
            }
            rs.lock()[me] = ctx.wtime() - t_fault;
            ms.lock()[me] = my_migrate;
        }

        let mut mine = Vec::with_capacity(measure_iters);
        for _ in 0..measure_iters {
            ctx.barrier();
            let t0 = ctx.wtime();
            dom.exchange(ctx);
            mine.push(ctx.wtime() - t0);
        }
        st.lock()[me] = mine;
    });

    let mean_of = |per_rank: &[Vec<f64>], iters: usize| {
        let per_iter: Vec<f64> = (0..iters)
            .map(|i| per_rank.iter().map(|r| r[i]).fold(0.0f64, f64::max))
            .collect();
        per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64
    };
    let max_of = |v: &[f64]| v.iter().fold(0.0f64, |m, &x| m.max(x));
    let node = *adapted_node.lock();
    let healthy_mean = mean_of(&healthy_times.lock(), warmup_iters);
    let steady_mean = mean_of(&steady_times.lock(), measure_iters);
    let recovery_secs = max_of(&recovery_secs.lock());
    let migrate_secs = max_of(&migrate_secs.lock());
    RecoveryRun {
        healthy_mean,
        steady_mean,
        recovery_secs,
        migrate_secs,
        adapted: node.is_some(),
        adapted_node: node,
        metrics: report.metrics,
    }
}
