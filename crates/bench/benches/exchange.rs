//! Criterion macro-benchmark: wall-clock cost of simulating one complete
//! single-node halo exchange (setup + exchange), i.e. the simulator's own
//! performance.

use criterion::{criterion_group, criterion_main, Criterion};
use stencil_bench::{measure_exchange, ExchangeConfig};
use stencil_core::Methods;

fn bench_exchange(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate");
    g.sample_size(10);
    g.bench_function("exchange/1n6r-specialized", |b| {
        b.iter(|| measure_exchange(&ExchangeConfig::new(1, 6, 930).methods(Methods::all()).iters(1)))
    });
    g.bench_function("exchange/1n6r-staged", |b| {
        b.iter(|| {
            measure_exchange(&ExchangeConfig::new(1, 6, 930).methods(Methods::staged_only()).iters(1))
        })
    });
    g.bench_function("exchange/4n6r-specialized", |b| {
        b.iter(|| measure_exchange(&ExchangeConfig::new(4, 6, 1685).methods(Methods::all()).iters(1)))
    });
    g.finish();
}

criterion_group!(benches, bench_exchange);
criterion_main!(benches);
