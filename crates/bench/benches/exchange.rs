//! Macro-benchmark: wall-clock cost of simulating one complete
//! single-node halo exchange (setup + exchange), i.e. the simulator's own
//! performance.

use stencil_bench::microbench::Bench;
use stencil_bench::{measure_exchange, ExchangeConfig};
use stencil_core::Methods;

fn main() {
    let mut g = Bench::new("simulate");
    g.sample_size(10);
    g.run("exchange/1n6r-specialized", || {
        measure_exchange(
            &ExchangeConfig::new(1, 6, 930)
                .methods(Methods::all())
                .iters(1),
        )
    });
    // Same workload with the metrics registry enabled — the pair bounds the
    // collection overhead (disabled-path overhead is a single branch; see
    // docs/OBSERVABILITY.md).
    g.run("exchange/1n6r-specialized+metrics", || {
        measure_exchange(
            &ExchangeConfig::new(1, 6, 930)
                .methods(Methods::all())
                .iters(1)
                .metrics(true),
        )
    });
    g.run("exchange/1n6r-staged", || {
        measure_exchange(
            &ExchangeConfig::new(1, 6, 930)
                .methods(Methods::staged_only())
                .iters(1),
        )
    });
    g.run("exchange/4n6r-specialized", || {
        measure_exchange(
            &ExchangeConfig::new(4, 6, 1685)
                .methods(Methods::all())
                .iters(1),
        )
    });
}
