//! Criterion micro-benchmarks: the setup-phase partitioner (real compute,
//! not simulated time).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stencil_core::Partition;

fn bench_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition");
    g.sample_size(30);
    for (name, nodes, gpus) in [("1n6g", 1usize, 6usize), ("256n6g", 256, 6), ("4096n8g", 4096, 8)] {
        g.bench_function(format!("new/{name}"), |b| {
            b.iter(|| Partition::new(black_box([8653, 8653, 8653]), black_box(nodes), black_box(gpus)))
        });
    }
    // Geometry queries used on hot setup paths.
    let p = Partition::new([8653, 8653, 8653], 256, 6);
    g.bench_function("all_boxes/256n6g", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (n, gp) in p.all_subdomains() {
                acc += p.gpu_box(n, gp).volume();
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
