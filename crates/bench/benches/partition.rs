//! Micro-benchmarks: the setup-phase partitioner (real compute, not
//! simulated time).

use std::hint::black_box;

use stencil_bench::microbench::Bench;
use stencil_core::Partition;

fn main() {
    let mut g = Bench::new("partition");
    g.sample_size(30);
    for (name, nodes, gpus) in [
        ("1n6g", 1usize, 6usize),
        ("256n6g", 256, 6),
        ("4096n8g", 4096, 8),
    ] {
        g.run(&format!("new/{name}"), || {
            Partition::new(
                black_box([8653, 8653, 8653]),
                black_box(nodes),
                black_box(gpus),
            )
        });
    }
    // Geometry queries used on hot setup paths.
    let p = Partition::new([8653, 8653, 8653], 256, 6);
    g.run("all_boxes/256n6g", || {
        let mut acc = 0u64;
        for (n, gp) in p.all_subdomains() {
            acc += p.gpu_box(n, gp).volume();
        }
        acc
    });
}
