//! Micro-benchmarks: QAP placement solvers.

use stencil_bench::microbench::Bench;
use stencil_core::dim3::Neighborhood;
use stencil_core::{placement, qap, Partition, Radius};
use topo::summit::summit_node;
use topo::NodeDiscovery;

fn instance(n_gpus: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    if n_gpus == 6 {
        let part = Partition::new([1440, 1452, 700], 1, 6);
        let disc = NodeDiscovery::discover(&summit_node());
        let w = placement::flow_matrix(
            &part,
            [0, 0, 0],
            Neighborhood::Full26,
            &Radius::constant(2),
            4,
            4,
        );
        (w, disc.distance_matrix())
    } else {
        // synthetic deterministic instance
        let mut state = 9u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let w = (0..n_gpus)
            .map(|_| (0..n_gpus).map(|_| rnd()).collect())
            .collect();
        let d = (0..n_gpus)
            .map(|_| (0..n_gpus).map(|_| rnd()).collect())
            .collect();
        (w, d)
    }
}

fn main() {
    let mut g = Bench::new("qap");
    g.sample_size(20);
    let (w6, d6) = instance(6);
    g.run("exhaustive/n6-summit", || qap::solve_exhaustive(&w6, &d6));
    g.run("greedy2opt/n6-summit", || qap::solve_greedy_2opt(&w6, &d6));
    let (w8, d8) = instance(8);
    g.run("exhaustive/n8", || qap::solve_exhaustive(&w8, &d8));
    let (w16, d16) = instance(16);
    g.run("greedy2opt/n16", || qap::solve_greedy_2opt(&w16, &d16));
}
