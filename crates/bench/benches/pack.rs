//! Criterion micro-benchmarks: halo pack/unpack throughput (the host-side
//! data plane that moves real bytes in full-data simulations).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stencil_core::dim3::Dir3;
use stencil_core::region::{array_dims, pack, src_region, unpack};
use stencil_core::Radius;

fn bench_pack(c: &mut Criterion) {
    let ext = [256u64, 256, 256];
    let r = Radius::constant(2);
    let dims = array_dims(ext, &r);
    let elem = 4usize;
    let arr = vec![7u8; (dims[0] * dims[1] * dims[2]) as usize * elem];
    let mut g = c.benchmark_group("pack");
    g.sample_size(30);
    for (name, d) in [
        ("x-face", Dir3::new(1, 0, 0)),
        ("z-face", Dir3::new(0, 0, 1)),
        ("edge", Dir3::new(1, 1, 0)),
    ] {
        let reg = src_region(ext, &r, d);
        let bytes = reg.volume() as usize * elem;
        let mut buf = vec![0u8; bytes];
        g.throughput(Throughput::Bytes(bytes as u64));
        g.bench_function(format!("pack/{name}"), |b| {
            b.iter(|| pack(&arr, dims, elem, reg, &mut buf, 0))
        });
        let mut dst = arr.clone();
        g.bench_function(format!("unpack/{name}"), |b| {
            b.iter(|| unpack(&buf, 0, &mut dst, dims, elem, reg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pack);
criterion_main!(benches);
