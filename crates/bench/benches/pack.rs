//! Micro-benchmarks: halo pack/unpack throughput (the host-side data plane
//! that moves real bytes in full-data simulations).

use stencil_bench::microbench::Bench;
use stencil_core::dim3::Dir3;
use stencil_core::region::{array_dims, pack, src_region, unpack};
use stencil_core::Radius;

fn main() {
    let ext = [256u64, 256, 256];
    let r = Radius::constant(2);
    let dims = array_dims(ext, &r);
    let elem = 4usize;
    let arr = vec![7u8; (dims[0] * dims[1] * dims[2]) as usize * elem];
    let mut g = Bench::new("pack");
    g.sample_size(30);
    for (name, d) in [
        ("x-face", Dir3::new(1, 0, 0)),
        ("z-face", Dir3::new(0, 0, 1)),
        ("edge", Dir3::new(1, 1, 0)),
    ] {
        let reg = src_region(ext, &r, d);
        let bytes = reg.volume() as usize * elem;
        let mut buf = vec![0u8; bytes];
        g.throughput_bytes(bytes as u64);
        g.run(&format!("pack/{name}"), || {
            pack(&arr, dims, elem, reg, &mut buf, 0)
        });
        let mut dst = arr.clone();
        g.run(&format!("unpack/{name}"), || {
            unpack(&buf, 0, &mut dst, dims, elem, reg)
        });
    }
}
