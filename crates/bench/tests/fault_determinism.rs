//! Fault schedules are explicit event tables in virtual time — no RNG —
//! so a faulted run is exactly as deterministic as a clean one.

use detsim::SimDuration;
use faultsim::FaultSchedule;
use stencil_bench::{measure_exchange, ExchangeConfig};

fn faulted_config() -> ExchangeConfig {
    ExchangeConfig::new(2, 6, 472)
        .iters(4)
        .faults(FaultSchedule::cascading(
            0,
            0,
            1,
            2,
            SimDuration::from_micros(100),
            SimDuration::from_micros(300),
        ))
}

#[test]
fn faulted_runs_are_bit_identical_across_runs() {
    let a = measure_exchange(&faulted_config());
    let b = measure_exchange(&faulted_config());
    let bits = |r: &stencil_bench::ExchangeResult| -> Vec<u64> {
        r.per_iter.iter().map(|v| v.to_bits()).collect()
    };
    assert_eq!(
        bits(&a),
        bits(&b),
        "identical fault schedules must give bit-identical virtual times"
    );

    // And the schedule actually does something: the same config without
    // faults completes faster.
    let clean = measure_exchange(&ExchangeConfig::new(2, 6, 472).iters(4));
    assert!(
        a.mean > clean.mean,
        "cascading faults should slow the exchange: clean {:.3e} s vs faulted {:.3e} s",
        clean.mean,
        a.mean
    );
}

/// The rank-lifecycle machinery (failure epochs, revocation checks, the
/// alive-count barrier release) must leave faults-off worlds untouched.
/// These per-iteration bits were captured before any of it existed; a
/// drift here means the resilience layer taxed the common case.
#[test]
fn faults_off_worlds_match_pre_resilience_golden_bits() {
    const STAGED_2N: [u64; 3] = [0x3f50e943cb89048a, 0x3f50e943cb890488, 0x3f50e943cb89048a];
    let r = measure_exchange(&ExchangeConfig::new(2, 6, 472).iters(3));
    let bits: Vec<u64> = r.per_iter.iter().map(|v| v.to_bits()).collect();
    assert_eq!(
        bits,
        STAGED_2N.to_vec(),
        "2-node staged faults-off world drifted from the pre-resilience pin"
    );

    const CUDA_AWARE_1N: [u64; 2] = [0x3f39f3c89f0542e0, 0x3f39f3c89f0542e0];
    let r = measure_exchange(&ExchangeConfig::new(1, 6, 256).iters(2).cuda_aware(true));
    let bits: Vec<u64> = r.per_iter.iter().map(|v| v.to_bits()).collect();
    assert_eq!(
        bits,
        CUDA_AWARE_1N.to_vec(),
        "1-node CUDA-aware faults-off world drifted from the pre-resilience pin"
    );
}

#[test]
fn metrics_do_not_perturb_faulted_virtual_times() {
    let plain = measure_exchange(&faulted_config());
    let metered = measure_exchange(&faulted_config().metrics(true));
    let pb: Vec<u64> = plain.per_iter.iter().map(|v| v.to_bits()).collect();
    let mb: Vec<u64> = metered.per_iter.iter().map(|v| v.to_bits()).collect();
    assert_eq!(pb, mb, "metrics-on faulted run diverged");
    let report = metered.metrics.expect("metrics requested");
    assert!(
        report.to_json().contains("\"faultsim\""),
        "fault transitions should be visible in the metrics artifact"
    );
}
