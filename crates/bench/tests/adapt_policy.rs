//! The [`stencil_core::AdaptPolicy`] gates, pinned at world level:
//!
//! * **hysteresis** — a healthy-but-flapping NIC (transient stalls that
//!   clear within a window or two) must never trigger migration, because
//!   re-placement cannot fix a transient and the migration itself costs
//!   downtime;
//! * **warmup** — no verdict (and no probe traffic) before the baseline
//!   window count is met;
//! * the deprecated pre-policy API (`HealthMonitor::new`,
//!   `adapt_placement`) keeps working for one release.

use detsim::SimDuration;
use faultsim::FaultSchedule;
use gpusim::DataMode;
use mpisim::{run_world, WorldConfig};
use parking_lot::Mutex;
use std::sync::Arc;
use stencil_core::{AdaptOutcome, AdaptPolicy, DomainBuilder, SkipReason};
use topo::summit::summit_cluster;

/// Three isolated 500 µs NIC stalls, minutes of virtual up-time apart
/// relative to the exchange window, against a policy requiring three
/// *consecutive* degraded windows: every stall is noticed (the window it
/// lands in blows past the threshold) but the streak never reaches the
/// hysteresis requirement, so the domain never migrates.
#[test]
fn flapping_nic_never_triggers_migration() {
    const WARMUP: usize = 3;
    const FAULTED_ITERS: usize = 12;
    let outcomes: Arc<Mutex<Vec<AdaptOutcome>>> = Arc::new(Mutex::new(Vec::new()));
    let o2 = Arc::clone(&outcomes);
    let world = WorldConfig::new(summit_cluster(2), 3)
        .data_mode(DataMode::Virtual)
        .metrics(true);
    let report = run_world(world, move |ctx| {
        let mut dom = DomainBuilder::new([472, 472, 472])
            .radius(2)
            .quantities(4)
            .build(ctx);
        let mut monitor = AdaptPolicy::new()
            .threshold(1.25)
            .warmup_windows(WARMUP)
            .hysteresis_windows(3)
            .monitor();
        let mut mine = Vec::new();
        // Warmup windows: adapt must decline with `Warmup`, issuing no
        // probe traffic, while the baseline accumulates.
        for _ in 0..WARMUP {
            ctx.barrier();
            dom.exchange(ctx);
            ctx.barrier();
            mine.push(dom.adapt(ctx, &mut monitor));
        }
        // Install the flaps at a quiet point: 500us stalls separated by
        // 3ms of clean air — each stall lands in (at most two) windows,
        // then the NIC is healthy again for several windows.
        ctx.barrier();
        if ctx.rank() == 0 {
            let now = ctx.sim().with_kernel(|k| k.now());
            let faults = FaultSchedule::flapping_nic(
                0,
                SimDuration::from_micros(100),
                SimDuration::from_micros(500),
                SimDuration::from_micros(3000),
                3,
            );
            ctx.install_faults_at(&faults, now);
        }
        ctx.barrier();
        for _ in 0..FAULTED_ITERS {
            ctx.barrier();
            dom.exchange(ctx);
            ctx.barrier();
            mine.push(dom.adapt(ctx, &mut monitor));
        }
        if ctx.rank() == 0 {
            *o2.lock() = mine;
        }
    });
    let outcomes = outcomes.lock().clone();
    assert_eq!(outcomes.len(), WARMUP + FAULTED_ITERS);
    for (i, o) in outcomes.iter().take(WARMUP).enumerate() {
        assert_eq!(
            *o,
            AdaptOutcome::Skipped {
                reason: SkipReason::Warmup
            },
            "window {i} should still be warming up"
        );
    }
    assert!(
        !outcomes
            .iter()
            .any(|o| matches!(o, AdaptOutcome::Migrated { .. })),
        "a flapping NIC must never trigger migration: {outcomes:?}"
    );
    let hysteresis_skips = outcomes
        .iter()
        .filter(|o| {
            matches!(
                o,
                AdaptOutcome::Skipped {
                    reason: SkipReason::Hysteresis { .. }
                }
            )
        })
        .count();
    assert!(
        hysteresis_skips >= 1,
        "the stalls should be noticed (and held back by hysteresis): {outcomes:?}"
    );
    assert!(
        outcomes
            .iter()
            .skip(WARMUP)
            .any(|o| matches!(o, AdaptOutcome::Healthy)),
        "clean windows between flaps should read healthy: {outcomes:?}"
    );
    // Declined adaptations are observable: the skip counter is in the
    // metrics artifact, labeled by gate.
    let json = report.metrics.expect("metrics requested").to_json();
    assert!(
        json.contains("adapt_skipped"),
        "resilience/adapt_skipped counter missing from metrics: {json}"
    );
    assert!(json.contains("hysteresis"), "skip labels missing: {json}");
}

/// The deprecated pre-policy surface still works: `HealthMonitor::new`
/// behaves like a policy with the same threshold/warmup (hysteresis 1),
/// and `adapt_placement` re-probes and migrates unconditionally.
#[test]
#[allow(deprecated)]
fn deprecated_shims_still_work() {
    let adapted: Arc<Mutex<Option<bool>>> = Arc::new(Mutex::new(None));
    let a2 = Arc::clone(&adapted);
    let world = WorldConfig::new(summit_cluster(1), 6).data_mode(DataMode::Virtual);
    run_world(world, move |ctx| {
        let mut dom = DomainBuilder::new([192, 192, 192])
            .radius(2)
            .quantities(2)
            .build(ctx);
        let mut monitor = stencil_core::HealthMonitor::new(1.5, 2);
        for _ in 0..2 {
            ctx.barrier();
            dom.exchange(ctx);
            ctx.barrier();
            monitor.check(ctx);
        }
        let changed = dom.adapt_placement(ctx);
        // Whatever the verdict, the domain must still exchange cleanly on
        // its (possibly rebuilt) plans.
        ctx.barrier();
        dom.exchange(ctx);
        if ctx.rank() == 0 {
            *a2.lock() = Some(changed);
        }
    });
    assert!(
        adapted.lock().is_some(),
        "deprecated adapt_placement failed to run"
    );
}
