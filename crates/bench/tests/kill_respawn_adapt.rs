//! Acceptance test for elastic recovery from rank failure (the `chaos`
//! bench's `kill-respawn` scenario, pinned down as assertions).
//!
//! Two Summit nodes, six ranks. Mid-run, one correlated fault: rank 4
//! dies, node 1's busiest placed NVLink drops to 10% of nominal, and the
//! inter-node switch to 70%. The rank respawns 300 virtual µs later with
//! its device data gone and rejoins over re-handshaked channels; the
//! placement is now wrong for the degraded fabric. Four runs of the
//! identical fault:
//!
//! * **no adaptation** — rejoin, keep the stale placement;
//! * **stop-the-world adaptation** — global re-probe/re-solve, serial
//!   migration behind entry/exit barriers;
//! * **overlapped adaptation** — per-link localization finds node 1,
//!   only its QAP is re-solved, migration overlaps staging and sends;
//! * **fresh-optimal** — built from scratch against the degraded fabric:
//!   the recovery target.
//!
//! The contract: overlapped partial re-placement recovers exchange time
//! to within 10% of fresh-optimal, not adapting is measurably worse, and
//! the stop-the-world reaction costs measurably more downtime than the
//! overlapped one.

use stencil_bench::chaos::{kill_recovery_run, RecoveryMode};

const DOMAIN: [u64; 3] = [720, 726, 350];
const WARMUP: usize = 3;
const MEASURE: usize = 3;

#[test]
fn overlapped_recovery_beats_stop_the_world_and_no_adapt() {
    let no_adapt = kill_recovery_run(DOMAIN, WARMUP, MEASURE, RecoveryMode::NoAdapt, false);
    let stw = kill_recovery_run(
        DOMAIN,
        WARMUP,
        MEASURE,
        RecoveryMode::StopTheWorldAdapt,
        false,
    );
    let ovl = kill_recovery_run(
        DOMAIN,
        WARMUP,
        MEASURE,
        RecoveryMode::OverlappedAdapt,
        false,
    );
    let fresh = kill_recovery_run(DOMAIN, WARMUP, MEASURE, RecoveryMode::FreshOptimal, false);

    assert!(!no_adapt.adapted, "the control arm must not adapt");
    assert!(stw.adapted, "stop-the-world arm failed to trigger");
    assert!(ovl.adapted, "overlapped arm failed to trigger");
    assert_eq!(
        ovl.adapted_node,
        Some(Some(1)),
        "localization should re-solve exactly node 1 (the degraded one)"
    );
    assert_eq!(
        stw.adapted_node,
        Some(None),
        "the global-scope arm should re-solve globally"
    );

    // The correlated fault bites: the stale placement is much slower than
    // the pre-fault baseline.
    assert!(
        no_adapt.steady_mean > 1.5 * no_adapt.healthy_mean,
        "degradation had no bite: healthy {:.3e} s vs stale {:.3e} s",
        no_adapt.healthy_mean,
        no_adapt.steady_mean
    );

    // Overlapped partial re-placement recovers to within 10% of the
    // fresh-optimal rebuild.
    assert!(
        ovl.steady_mean <= 1.10 * fresh.steady_mean,
        "overlapped adaptation did not recover: {:.3e} s vs fresh-optimal {:.3e} s ({:.2}x)",
        ovl.steady_mean,
        fresh.steady_mean,
        ovl.steady_mean / fresh.steady_mean
    );

    // Not adapting is measurably worse than adapting.
    assert!(
        no_adapt.steady_mean > 1.2 * ovl.steady_mean,
        "no-adaptation should be measurably slower: stale {:.3e} s vs adapted {:.3e} s",
        no_adapt.steady_mean,
        ovl.steady_mean
    );

    // The stop-the-world reaction (global probe, serial staged migration,
    // entry/exit barriers) costs measurably more downtime than the
    // localized, overlapped one.
    assert!(
        stw.migrate_secs > 1.1 * ovl.migrate_secs,
        "stop-the-world should pay more migration downtime: {:.3e} s vs {:.3e} s",
        stw.migrate_secs,
        ovl.migrate_secs
    );
}

/// The whole scenario — kill, revoked channels, respawn, re-handshake,
/// health windows, localization, QAP, overlapped migration — is
/// deterministic: bit-identical across runs.
#[test]
fn kill_respawn_recovery_is_bit_identical_across_runs() {
    let a = kill_recovery_run(
        DOMAIN,
        WARMUP,
        MEASURE,
        RecoveryMode::OverlappedAdapt,
        false,
    );
    let b = kill_recovery_run(
        DOMAIN,
        WARMUP,
        MEASURE,
        RecoveryMode::OverlappedAdapt,
        false,
    );
    assert_eq!(a.adapted, b.adapted);
    assert_eq!(a.adapted_node, b.adapted_node);
    assert_eq!(
        a.healthy_mean.to_bits(),
        b.healthy_mean.to_bits(),
        "pre-fault times diverged between identical runs"
    );
    assert_eq!(
        a.steady_mean.to_bits(),
        b.steady_mean.to_bits(),
        "post-recovery times diverged between identical runs"
    );
    assert_eq!(
        a.migrate_secs.to_bits(),
        b.migrate_secs.to_bits(),
        "migration downtime diverged between identical runs"
    );
}

/// The OOM flavor: the kill is a device out-of-memory event. The victim's
/// allocations fail while the device is shrunk (asserted inside the
/// harness), memory is restored before the respawn, and recovery proceeds
/// identically.
#[test]
fn oom_respawn_recovers_like_kill_respawn() {
    let ovl = kill_recovery_run(DOMAIN, WARMUP, MEASURE, RecoveryMode::OverlappedAdapt, true);
    let fresh = kill_recovery_run(DOMAIN, WARMUP, MEASURE, RecoveryMode::FreshOptimal, true);
    assert!(ovl.adapted, "OOM arm failed to trigger adaptation");
    assert!(
        ovl.steady_mean <= 1.10 * fresh.steady_mean,
        "OOM recovery did not reach fresh-optimal: {:.3e} s vs {:.3e} s",
        ovl.steady_mean,
        fresh.steady_mean
    );
}
