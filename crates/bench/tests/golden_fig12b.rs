//! Determinism regression for the paper's Fig. 12b shape.
//!
//! The simulator promises **bit-identical virtual times** across runs,
//! machines, and — the point of this test — performance work on the kernel.
//! The golden constants below are the exact `f64` bit patterns produced by
//! the pre-optimization simulator for a 16-node weak-scaling exchange; any
//! scheduler / flow-network / event-queue change that shifts a virtual
//! timestamp by even one picosecond fails this test.

use faultsim::FaultSchedule;
use stencil_bench::{measure_exchange, node_aware_placements, weak_scaling_extent, ExchangeConfig};

/// 16 nodes x 6 ranks, weak-scaling extent 750 per GPU.
const NODES: usize = 16;
const RANKS_PER_NODE: usize = 6;

/// Bit patterns of `ExchangeResult::per_iter` (seconds of virtual time per
/// exchange iteration) for the config above with `iters(2)`, captured on
/// the seed simulator. Iteration 0 includes first-touch effects (cold FIFO
/// and match-queue state), so the two differ in the last ulp.
const GOLDEN_PER_ITER_BITS: [u64; 2] = [0x3f90c4cfc10af58a, 0x3f90c4cfc10af589];

fn golden_config() -> ExchangeConfig {
    let extent = weak_scaling_extent(750, NODES * RANKS_PER_NODE);
    assert_eq!(extent, 3434, "weak-scaling extent formula changed");
    ExchangeConfig::new(NODES, RANKS_PER_NODE, extent).iters(2)
}

#[test]
fn fig12b_16_node_virtual_times_match_golden_bits() {
    let r = measure_exchange(&golden_config());
    let bits: Vec<u64> = r.per_iter.iter().map(|v| v.to_bits()).collect();
    assert_eq!(
        bits, GOLDEN_PER_ITER_BITS,
        "virtual times diverged from golden values: got {:?} s",
        r.per_iter
    );
}

/// An explicitly-attached empty fault schedule installs zero events, so
/// the run must be indistinguishable — to the bit — from a fault-free one.
#[test]
fn empty_fault_schedule_is_bit_identical_to_golden() {
    let r = measure_exchange(&golden_config().faults(FaultSchedule::new()));
    let bits: Vec<u64> = r.per_iter.iter().map(|v| v.to_bits()).collect();
    assert_eq!(
        bits, GOLDEN_PER_ITER_BITS,
        "an empty fault schedule perturbed virtual time: got {:?} s",
        r.per_iter
    );
}

/// Feeding back precomputed placements (the sweep-caching path) must
/// reproduce exactly what the in-run placement phase would have chosen.
#[test]
fn preplaced_placements_are_bit_identical_to_golden() {
    let cfg = golden_config();
    let pre = node_aware_placements(&cfg);
    let r = measure_exchange(&cfg.preplaced(pre));
    let bits: Vec<u64> = r.per_iter.iter().map(|v| v.to_bits()).collect();
    assert_eq!(
        bits, GOLDEN_PER_ITER_BITS,
        "precomputed placements diverged from the in-run placement phase: got {:?} s",
        r.per_iter
    );
}

#[test]
fn metrics_collection_does_not_perturb_virtual_time() {
    let plain = measure_exchange(&golden_config());
    let metered = measure_exchange(&golden_config().metrics(true));
    let plain_bits: Vec<u64> = plain.per_iter.iter().map(|v| v.to_bits()).collect();
    let metered_bits: Vec<u64> = metered.per_iter.iter().map(|v| v.to_bits()).collect();
    assert_eq!(
        plain_bits, metered_bits,
        "metrics-on run produced different virtual times"
    );
    assert!(
        metered.metrics.is_some(),
        "metrics(true) should capture a registry snapshot"
    );
}
