//! Acceptance test for degradation-aware adaptive re-placement (the
//! `chaos` bench's headline scenario, pinned down as assertions).
//!
//! One Summit node, six ranks. The healthy node-aware placement's busiest
//! NVLink drops to 10% of nominal mid-run. Three runs of the identical
//! fault:
//!
//! * **no adaptation** — the stale placement keeps pushing its heaviest
//!   traffic over the degraded link;
//! * **adaptive re-placement** — a [`stencil_core::HealthMonitor`] flags
//!   the slowdown, bandwidths are re-probed, the per-node QAP re-solved
//!   against the degraded matrix, subdomains migrated, plans rebuilt;
//! * **fresh-optimal** — the domain is built from scratch with empirical
//!   placement while the fault is live: the best the adaptive path could
//!   possibly reach.
//!
//! The contract: adaptation recovers exchange time to within 10% of
//! fresh-optimal, and not adapting is measurably slower.

use stencil_bench::chaos::{degraded_triad_run, TriadMode};

const DOMAIN: [u64; 3] = [720, 726, 350];
const FACTOR: f64 = 0.1;
const WARMUP: usize = 3;
const MEASURE: usize = 3;

#[test]
fn adaptive_replacement_recovers_to_fresh_optimal() {
    let no_adapt = degraded_triad_run(DOMAIN, 6, FACTOR, WARMUP, MEASURE, TriadMode::NoAdapt);
    let adapt = degraded_triad_run(DOMAIN, 6, FACTOR, WARMUP, MEASURE, TriadMode::Adapt);
    let fresh = degraded_triad_run(DOMAIN, 6, FACTOR, WARMUP, MEASURE, TriadMode::FreshOptimal);

    assert!(!no_adapt.adapted, "the control arm must not adapt");
    assert!(adapt.adapted, "the monitor failed to trigger re-placement");

    // The fault bites: the stale placement is much slower than healthy.
    assert!(
        no_adapt.degraded_mean > 1.5 * no_adapt.healthy_mean,
        "degradation had no bite: healthy {:.3e} s vs degraded {:.3e} s",
        no_adapt.healthy_mean,
        no_adapt.degraded_mean
    );

    // Adaptation recovers to within 10% of the fresh-optimal rebuild.
    assert!(
        adapt.degraded_mean <= 1.10 * fresh.degraded_mean,
        "adaptation did not recover: adapted {:.3e} s vs fresh-optimal {:.3e} s ({:.2}x)",
        adapt.degraded_mean,
        fresh.degraded_mean,
        adapt.degraded_mean / fresh.degraded_mean
    );

    // And not adapting is measurably slower than adapting.
    assert!(
        no_adapt.degraded_mean > 1.2 * adapt.degraded_mean,
        "no-adaptation should be measurably slower: stale {:.3e} s vs adapted {:.3e} s",
        no_adapt.degraded_mean,
        adapt.degraded_mean
    );
}

/// The whole scenario — fault injection, health windows, re-probe, QAP,
/// migration, plan rebuild — is deterministic: bit-identical across runs.
#[test]
fn adaptive_replacement_is_bit_identical_across_runs() {
    let a = degraded_triad_run(DOMAIN, 6, FACTOR, WARMUP, MEASURE, TriadMode::Adapt);
    let b = degraded_triad_run(DOMAIN, 6, FACTOR, WARMUP, MEASURE, TriadMode::Adapt);
    assert_eq!(a.adapted, b.adapted);
    assert_eq!(
        a.healthy_mean.to_bits(),
        b.healthy_mean.to_bits(),
        "pre-fault times diverged between identical runs"
    );
    assert_eq!(
        a.degraded_mean.to_bits(),
        b.degraded_mean.to_bits(),
        "post-adaptation times diverged between identical runs"
    );
}
