//! Deterministic, virtual-time fault injection for the simulation stack.
//!
//! A [`FaultSchedule`] is an explicit event table — no RNG anywhere — of
//! [`FaultEvent`]s, each degrading or restoring a [`FaultTarget`] at a fixed
//! virtual-time offset. Installing a schedule resolves every target to the
//! concrete simulator links it covers, captures their baseline capacity and
//! latency, and registers one kernel timer per event. Because the table is
//! explicit and timers fire in deterministic `(time, install-order)` order,
//! a faulted run is bit-identical across repetitions, and installing an
//! *empty* schedule registers zero events, leaving the simulation
//! bit-identical to one without the subsystem at all.
//!
//! Six fault classes cover the paper's placement-invalidating scenarios:
//!
//! * **Link degradation** ([`FaultTarget::NodeLink`] /
//!   [`FaultTarget::GpuPair`]) — an intra-node NVLink/X-Bus/PCIe link loses
//!   bandwidth (and optionally gains latency) mid-run. Uses
//!   `Kernel::set_link_capacity`, which re-settles and re-projects every
//!   flow crossing the link under the conservation invariants.
//! * **NIC flap** ([`FaultTarget::Nic`]) — a node's injection/ejection
//!   links stall to [`STALL_BANDWIDTH_FACTOR`] of nominal for an interval.
//!   Capacities must stay positive, so a "down" NIC is modeled as a
//!   near-zero trickle; in-flight messages resume when the NIC comes back.
//! * **Switch degradation** ([`FaultTarget::Switch`]) — one switch of the
//!   fat tree degrades, correlating the NICs of every node behind it (see
//!   `topo::SwitchHierarchy::group_nodes` for the blast radius).
//! * **Straggler device** ([`FaultTarget::Device`]) — one GPU's
//!   kernel/copy engine runs at a fraction of nominal speed, slowing its
//!   compute, packs, and same-device copies.
//! * **Memory shrink** ([`FaultAction::ShrinkMem`] on a device) — the
//!   device's usable memory limit drops mid-run; existing allocations
//!   survive but new ones fail, modeling fenced-off bad HBM pages.
//! * **Process death** ([`FaultTarget::Rank`] with [`FaultAction::Kill`] /
//!   [`FaultAction::Respawn`]) — a simulated MPI rank dies and optionally
//!   comes back. Rank events are *not* applied by [`FaultSchedule::install_at`]
//!   (this crate knows links and devices, not communicators); the MPI
//!   layer reads them via [`FaultSchedule::rank_events`] and implements
//!   the ULFM-style shrink-or-respawn contract (see `docs/RESILIENCE.md`).
//!
//! Factors are always relative to the baseline captured at install time, so
//! repeated degrades do not compound and [`FaultAction::Restore`] returns
//! the target to its install-time state.

#![warn(missing_docs)]

use detsim::{Kernel, LinkId, SimDuration, SimTime};
use gpusim::GpuMachine;

/// Bandwidth factor used to model a stalled ("down") transport. Link
/// capacities must stay positive, so a stall is a near-zero trickle rather
/// than a true zero; at simulated message sizes the residual rate is
/// negligible against any realistic flap interval.
pub const STALL_BANDWIDTH_FACTOR: f64 = 1e-6;

/// The piece of the machine a fault applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// Duplex link `link` of node `node`'s local fabric, both directions.
    /// `link` indexes the node spec's link table (see
    /// `Fabric::node_link_count`).
    NodeLink {
        /// Node whose fabric holds the link.
        node: usize,
        /// Index into the node spec's duplex-link table.
        link: usize,
    },
    /// Every fabric link on the intra-node path between two GPUs of one
    /// node, both directions — e.g. "the NVLink joining a triad pair".
    GpuPair {
        /// Node holding both GPUs.
        node: usize,
        /// First node-local GPU index.
        a: usize,
        /// Second node-local GPU index.
        b: usize,
    },
    /// A node's NIC: its injection and ejection links.
    Nic {
        /// Node whose NIC is targeted.
        node: usize,
    },
    /// One device's kernel/copy engine (global device id).
    Device {
        /// Global device id (`node * gpus_per_node + local`).
        device: usize,
    },
    /// A switch of the inter-node fabric: the injection and ejection links
    /// of every node in the contiguous range `[first_node, first_node +
    /// nodes)` — the blast radius of one fat-tree switch. Use
    /// `topo::SwitchHierarchy::group_nodes` to derive the range from a
    /// hierarchy level and group.
    Switch {
        /// First node behind the switch.
        first_node: usize,
        /// Number of nodes behind the switch.
        nodes: usize,
    },
    /// A simulated MPI rank (process). Only [`FaultAction::Kill`] and
    /// [`FaultAction::Respawn`] apply; events on this target are skipped
    /// by [`FaultSchedule::install_at`] and installed by the MPI layer.
    Rank {
        /// World rank of the process.
        rank: usize,
    },
}

/// The transition a [`FaultEvent`] applies to its target.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultAction {
    /// Scale the target's install-time baseline: capacity is multiplied by
    /// `bandwidth_factor`, latency by `latency_factor`. Both factors must
    /// be positive and finite. Factors are absolute against the baseline,
    /// not the current value, so repeated degrades do not compound.
    Degrade {
        /// Multiplier on baseline bandwidth (e.g. `0.1` = 10% of nominal).
        bandwidth_factor: f64,
        /// Multiplier on baseline latency (`1.0` = unchanged).
        latency_factor: f64,
    },
    /// Return the target to the baseline captured at install time. On a
    /// [`FaultTarget::Device`] this also clears any memory-limit override
    /// applied by [`FaultAction::ShrinkMem`].
    Restore,
    /// Shrink a device's usable memory limit to `mem_factor` x its
    /// configured limit. Only valid on [`FaultTarget::Device`]. Existing
    /// allocations survive; new ones fail against the shrunken limit.
    ShrinkMem {
        /// Multiplier on the configured device memory limit, in `(0, 1]`.
        mem_factor: f64,
    },
    /// Kill a rank: its pending sends/receives resolve as revoked, its
    /// channels are torn down, and survivors observe a shrunken world.
    /// Only valid on [`FaultTarget::Rank`].
    Kill,
    /// Respawn a previously killed rank: it rejoins the world and channels
    /// re-handshake. Only valid on [`FaultTarget::Rank`].
    Respawn,
}

/// One scheduled fault transition.
#[derive(Clone, Copy, Debug)]
pub struct FaultEvent {
    /// When the transition fires, relative to schedule installation.
    pub at: SimDuration,
    /// What it applies to.
    pub target: FaultTarget,
    /// What happens.
    pub action: FaultAction,
}

/// An explicit, deterministic table of fault transitions.
///
/// Build one with the fluent methods ([`FaultSchedule::degrade`],
/// [`FaultSchedule::restore`], [`FaultSchedule::stall`]) or a named
/// scenario constructor, then install it into a kernel with
/// [`FaultSchedule::install_at`]. The default schedule is empty and
/// installs zero events.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (injects nothing; runs stay bit-identical).
    pub fn new() -> Self {
        Self::default()
    }

    /// The scheduled transitions, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled transitions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Append a transition. Panics on non-positive or non-finite factors
    /// or an action/target mismatch — schedules are validated at build
    /// time, not at fire time.
    pub fn push(mut self, event: FaultEvent) -> Self {
        let is_rank = matches!(event.target, FaultTarget::Rank { .. });
        match event.action {
            FaultAction::Degrade {
                bandwidth_factor,
                latency_factor,
            } => {
                assert!(
                    bandwidth_factor > 0.0 && bandwidth_factor.is_finite(),
                    "bandwidth factor must be positive and finite"
                );
                assert!(
                    latency_factor > 0.0 && latency_factor.is_finite(),
                    "latency factor must be positive and finite"
                );
                assert!(!is_rank, "Degrade does not apply to a rank target");
            }
            FaultAction::Restore => {
                assert!(!is_rank, "Restore does not apply to a rank target");
            }
            FaultAction::ShrinkMem { mem_factor } => {
                assert!(
                    mem_factor > 0.0 && mem_factor <= 1.0,
                    "memory factor must be in (0, 1]"
                );
                assert!(
                    matches!(event.target, FaultTarget::Device { .. }),
                    "ShrinkMem only applies to a device target"
                );
            }
            FaultAction::Kill | FaultAction::Respawn => {
                assert!(is_rank, "Kill/Respawn only apply to a rank target");
            }
        }
        self.events.push(event);
        self
    }

    /// The rank-lifecycle transitions of the schedule, in insertion order:
    /// `(offset, rank, action)` with action [`FaultAction::Kill`] or
    /// [`FaultAction::Respawn`]. [`FaultSchedule::install_at`] skips these;
    /// the MPI layer installs them against its own state.
    pub fn rank_events(&self) -> impl Iterator<Item = (SimDuration, usize, FaultAction)> + '_ {
        self.events.iter().filter_map(|ev| match ev.target {
            FaultTarget::Rank { rank } => Some((ev.at, rank, ev.action)),
            _ => None,
        })
    }

    /// Whether the schedule contains rank kill/respawn events.
    pub fn has_rank_events(&self) -> bool {
        self.rank_events().next().is_some()
    }

    /// Degrade `target` to `bandwidth_factor` x baseline bandwidth at `at`
    /// (latency unchanged).
    pub fn degrade(self, at: SimDuration, target: FaultTarget, bandwidth_factor: f64) -> Self {
        self.push(FaultEvent {
            at,
            target,
            action: FaultAction::Degrade {
                bandwidth_factor,
                latency_factor: 1.0,
            },
        })
    }

    /// Degrade `target`'s bandwidth *and* latency at `at`.
    pub fn degrade_with_latency(
        self,
        at: SimDuration,
        target: FaultTarget,
        bandwidth_factor: f64,
        latency_factor: f64,
    ) -> Self {
        self.push(FaultEvent {
            at,
            target,
            action: FaultAction::Degrade {
                bandwidth_factor,
                latency_factor,
            },
        })
    }

    /// Restore `target` to its install-time baseline at `at`.
    pub fn restore(self, at: SimDuration, target: FaultTarget) -> Self {
        self.push(FaultEvent {
            at,
            target,
            action: FaultAction::Restore,
        })
    }

    /// Stall `target` (degrade to [`STALL_BANDWIDTH_FACTOR`]) for the
    /// half-open interval `[from, from + down_for)`.
    pub fn stall(self, from: SimDuration, down_for: SimDuration, target: FaultTarget) -> Self {
        self.degrade(from, target, STALL_BANDWIDTH_FACTOR)
            .restore(from + down_for, target)
    }

    /// Concatenate another schedule's events after this one's.
    pub fn merge(mut self, other: FaultSchedule) -> Self {
        self.events.extend(other.events);
        self
    }

    /// The same schedule with every event delayed by `by`.
    pub fn shifted(mut self, by: SimDuration) -> Self {
        for e in &mut self.events {
            e.at += by;
        }
        self
    }

    // ----- named scenarios -------------------------------------------------

    /// **degraded-triad**: at `at`, the intra-node path between GPUs `a`
    /// and `b` of `node` permanently drops to `bandwidth_factor` x nominal
    /// — the paper-motivating case where the placement's best link stops
    /// being best.
    pub fn degraded_triad(
        node: usize,
        a: usize,
        b: usize,
        at: SimDuration,
        bandwidth_factor: f64,
    ) -> Self {
        Self::new().degrade(at, FaultTarget::GpuPair { node, a, b }, bandwidth_factor)
    }

    /// **flapping-nic**: starting at `first_down`, node `node`'s NIC goes
    /// down for `down_for` then up for `up_for`, `flaps` times.
    pub fn flapping_nic(
        node: usize,
        first_down: SimDuration,
        down_for: SimDuration,
        up_for: SimDuration,
        flaps: usize,
    ) -> Self {
        let mut s = Self::new();
        let period = down_for + up_for;
        let mut start = first_down;
        for _ in 0..flaps {
            s = s.stall(start, down_for, FaultTarget::Nic { node });
            start += period;
        }
        s
    }

    /// **one-straggler-gpu**: at `at`, device `device`'s engine permanently
    /// drops to `speed_factor` x nominal throughput.
    pub fn straggler_gpu(device: usize, at: SimDuration, speed_factor: f64) -> Self {
        Self::new().degrade(at, FaultTarget::Device { device }, speed_factor)
    }

    /// **cascading**: a triad-link degradation on `node` (GPUs `a`/`b`),
    /// then a NIC flap on the same node, then a straggler `device`, each
    /// `spacing` after the previous, starting at `at`. The compound case:
    /// by the end, three independent faults are live at once.
    pub fn cascading(
        node: usize,
        a: usize,
        b: usize,
        device: usize,
        at: SimDuration,
        spacing: SimDuration,
    ) -> Self {
        Self::degraded_triad(node, a, b, at, 0.1)
            .merge(Self::flapping_nic(node, at + spacing, spacing, spacing, 2))
            .merge(Self::straggler_gpu(device, at + spacing + spacing, 0.05))
    }

    /// **degraded-switch**: at `at`, the switch behind nodes
    /// `[first_node, first_node + nodes)` drops to `bandwidth_factor` x
    /// nominal on every covered NIC — correlated degradation across a
    /// whole fat-tree group.
    pub fn degraded_switch(
        first_node: usize,
        nodes: usize,
        at: SimDuration,
        bandwidth_factor: f64,
    ) -> Self {
        Self::new().degrade(
            at,
            FaultTarget::Switch { first_node, nodes },
            bandwidth_factor,
        )
    }

    /// Kill `rank` at `at`, permanently (no respawn).
    pub fn kill(rank: usize, at: SimDuration) -> Self {
        Self::new().push(FaultEvent {
            at,
            target: FaultTarget::Rank { rank },
            action: FaultAction::Kill,
        })
    }

    /// **kill-respawn**: `rank` dies at `at` and rejoins `down_for` later.
    pub fn kill_respawn(rank: usize, at: SimDuration, down_for: SimDuration) -> Self {
        Self::kill(rank, at).push(FaultEvent {
            at: at + down_for,
            target: FaultTarget::Rank { rank },
            action: FaultAction::Respawn,
        })
    }

    /// **oom-respawn**: at `at`, device `device`'s memory shrinks to
    /// `mem_factor` x nominal and its owning `rank` is killed (the OOM
    /// took the process down); `down_for` later the memory is restored and
    /// the rank respawns. The caller maps device to owning rank — this
    /// crate does not know the rank↔device assignment.
    pub fn oom_respawn(
        device: usize,
        rank: usize,
        at: SimDuration,
        down_for: SimDuration,
        mem_factor: f64,
    ) -> Self {
        // Order matters at equal timestamps: shrink lands before the kill,
        // and the memory is restored before the rank rejoins.
        Self::new()
            .push(FaultEvent {
                at,
                target: FaultTarget::Device { device },
                action: FaultAction::ShrinkMem { mem_factor },
            })
            .restore(at + down_for, FaultTarget::Device { device })
            .merge(Self::kill_respawn(rank, at, down_for))
    }

    // ----- installation ----------------------------------------------------

    /// Install the schedule with event offsets measured from virtual time
    /// zero. Call during world construction, before the simulation runs.
    pub fn install(&self, kernel: &mut Kernel, machine: &GpuMachine) {
        self.install_at(kernel, machine, SimTime::ZERO);
    }

    /// Install the schedule with event offsets measured from `base`.
    ///
    /// Every target is resolved to its concrete simulator links *now*, and
    /// each link's current capacity and latency are captured as the
    /// baseline that factors multiply and [`FaultAction::Restore`]
    /// reinstates. One kernel timer is registered per event; an empty
    /// schedule registers nothing. Install a schedule exactly once — the
    /// baselines of a second installation would capture any degradation
    /// the first one has already applied.
    ///
    /// Rank kill/respawn events are *skipped* here — this layer has no
    /// notion of a communicator. The MPI layer installs them from
    /// [`FaultSchedule::rank_events`]; a schedule installed through both
    /// paths (as `mpisim::run_world` does) gets every event exactly once.
    pub fn install_at(&self, kernel: &mut Kernel, machine: &GpuMachine, base: SimTime) {
        for ev in &self.events {
            if matches!(ev.target, FaultTarget::Rank { .. }) {
                continue;
            }
            let links: Vec<(LinkId, f64, SimDuration)> = match ev.action {
                // Memory shrink touches no links (the engine keeps its speed).
                FaultAction::ShrinkMem { .. } => Vec::new(),
                _ => resolve_links(machine, ev.target)
                    .into_iter()
                    .map(|l| (l, kernel.link_capacity(l), kernel.link_latency(l)))
                    .collect(),
            };
            let mem = match (ev.target, ev.action) {
                (FaultTarget::Device { device }, FaultAction::ShrinkMem { mem_factor }) => {
                    let limit = (machine.device_mem_limit(device) as f64 * mem_factor) as u64;
                    Some((device, Some(limit)))
                }
                (FaultTarget::Device { device }, FaultAction::Restore) => Some((device, None)),
                _ => None,
            };
            let action = ev.action;
            let m = machine.clone();
            kernel.schedule_at(base + ev.at, move |k| {
                apply(k, &links, action);
                if let Some((device, limit)) = mem {
                    m.set_device_mem_limit(device, limit);
                    if k.metrics.is_enabled() {
                        let name = k.link_name(m.engine_link(device)).to_string();
                        let label = if limit.is_some() {
                            "shrink-mem"
                        } else {
                            "restore-mem"
                        };
                        k.metrics.counter_add(
                            "faultsim",
                            "transitions",
                            &[("link", &name), ("action", label)],
                            1,
                        );
                    }
                }
            });
        }
    }
}

/// Resolve a target to the simulator links it covers, deduplicated.
fn resolve_links(machine: &GpuMachine, target: FaultTarget) -> Vec<LinkId> {
    let fabric = machine.fabric();
    match target {
        FaultTarget::NodeLink { node, link } => {
            let (fwd, rev) = fabric.node_duplex_link(node, link);
            vec![fwd, rev]
        }
        FaultTarget::GpuPair { node, a, b } => {
            let mut links = fabric.gpu_gpu_path(node, a, b);
            links.extend(fabric.gpu_gpu_path(node, b, a));
            links.sort_unstable();
            links.dedup();
            links
        }
        FaultTarget::Nic { node } => {
            vec![fabric.injection_link(node), fabric.ejection_link(node)]
        }
        FaultTarget::Device { device } => vec![machine.engine_link(device)],
        FaultTarget::Switch { first_node, nodes } => {
            let last = (first_node + nodes).min(machine.num_nodes());
            (first_node..last)
                .flat_map(|n| [fabric.injection_link(n), fabric.ejection_link(n)])
                .collect()
        }
        FaultTarget::Rank { .. } => Vec::new(),
    }
}

/// Apply one fired transition to its resolved links.
fn apply(k: &mut Kernel, links: &[(LinkId, f64, SimDuration)], action: FaultAction) {
    let label = match action {
        FaultAction::Degrade { .. } => "degrade",
        _ => "restore",
    };
    for &(link, base_cap, base_lat) in links {
        match action {
            FaultAction::Degrade {
                bandwidth_factor,
                latency_factor,
            } => {
                k.set_link_capacity(link, base_cap * bandwidth_factor);
                if latency_factor != 1.0 {
                    k.set_link_latency(
                        link,
                        SimDuration::from_secs_f64(base_lat.as_secs_f64() * latency_factor),
                    );
                }
            }
            FaultAction::Restore => {
                k.set_link_capacity(link, base_cap);
                k.set_link_latency(link, base_lat);
            }
            // Resolved to zero links above; nothing to apply here.
            FaultAction::ShrinkMem { .. } | FaultAction::Kill | FaultAction::Respawn => {}
        }
        if k.metrics.is_enabled() {
            let name = k.link_name(link).to_string();
            k.metrics.counter_add(
                "faultsim",
                "transitions",
                &[("link", &name), ("action", label)],
                1,
            );
        }
    }
}

/// The registry of named fault scenarios — the single name table shared by
/// the `chaos` bench CLI, the service wire format, and tests. A new
/// scenario registers here once and is reachable everywhere by the same
/// string; [`Scenario::name`] and [`Scenario::parse`] round-trip.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// No injected faults.
    None,
    /// A triad NVLink degrades ([`FaultSchedule::degraded_triad`]).
    DegradedTriad,
    /// The degraded-triad pattern on a fat (12-GPU) node.
    DegradedFatNode,
    /// A NIC flaps down and up ([`FaultSchedule::flapping_nic`]).
    FlappingNic,
    /// One GPU engine runs slow ([`FaultSchedule::straggler_gpu`]).
    StragglerGpu,
    /// Compound triad + flap + straggler ([`FaultSchedule::cascading`]).
    Cascading,
    /// A rank dies and rejoins ([`FaultSchedule::kill_respawn`]).
    KillRespawn,
    /// A device OOMs, killing its rank ([`FaultSchedule::oom_respawn`]).
    OomRespawn,
}

impl Scenario {
    /// Every registered scenario, in display order.
    pub const ALL: [Scenario; 8] = [
        Scenario::None,
        Scenario::DegradedTriad,
        Scenario::DegradedFatNode,
        Scenario::FlappingNic,
        Scenario::StragglerGpu,
        Scenario::Cascading,
        Scenario::KillRespawn,
        Scenario::OomRespawn,
    ];

    /// The canonical wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::None => "none",
            Scenario::DegradedTriad => "degraded-triad",
            Scenario::DegradedFatNode => "degraded-fat-node",
            Scenario::FlappingNic => "flapping-nic",
            Scenario::StragglerGpu => "straggler-gpu",
            Scenario::Cascading => "cascading",
            Scenario::KillRespawn => "kill-respawn",
            Scenario::OomRespawn => "oom-respawn",
        }
    }

    /// Look a scenario up by its canonical name.
    pub fn parse(s: &str) -> Option<Scenario> {
        Scenario::ALL.iter().copied().find(|sc| sc.name() == s)
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::{DataMode, GpuCostModel};
    use topo::summit::summit_cluster;

    fn machine(k: &mut Kernel) -> GpuMachine {
        GpuMachine::new(
            k,
            summit_cluster(2),
            GpuCostModel::default(),
            DataMode::Virtual,
        )
    }

    #[test]
    fn empty_schedule_installs_no_events() {
        let mut k = Kernel::new();
        let m = machine(&mut k);
        FaultSchedule::new().install(&mut k, &m);
        k.run_to_completion();
        assert_eq!(k.executed_events(), 0);
    }

    #[test]
    fn degrade_and_restore_round_trip_capacity_and_latency() {
        let mut k = Kernel::new();
        let m = machine(&mut k);
        let path = m.fabric().gpu_gpu_path(0, 0, 1);
        assert_eq!(path.len(), 1);
        let link = path[0];
        let cap0 = k.link_capacity(link);
        let lat0 = k.link_latency(link);
        let target = FaultTarget::GpuPair {
            node: 0,
            a: 0,
            b: 1,
        };
        let s = FaultSchedule::new()
            .degrade_with_latency(SimDuration::from_micros(10), target, 0.25, 2.0)
            .restore(SimDuration::from_micros(20), target);
        s.install(&mut k, &m);
        let expected_lat = SimDuration::from_secs_f64(lat0.as_secs_f64() * 2.0);
        k.schedule_at(SimTime::ZERO + SimDuration::from_micros(15), move |k| {
            assert_eq!(k.link_capacity(link), cap0 * 0.25);
            assert_eq!(k.link_latency(link), expected_lat);
        });
        k.run_to_completion();
        assert_eq!(k.link_capacity(link), cap0);
        assert_eq!(k.link_latency(link), lat0);
    }

    #[test]
    fn repeated_degrades_do_not_compound() {
        let mut k = Kernel::new();
        let m = machine(&mut k);
        let link = k.link_capacity(m.fabric().injection_link(1));
        let target = FaultTarget::Nic { node: 1 };
        let s = FaultSchedule::new()
            .degrade(SimDuration::from_micros(1), target, 0.5)
            .degrade(SimDuration::from_micros(2), target, 0.5);
        s.install(&mut k, &m);
        k.run_to_completion();
        assert_eq!(k.link_capacity(m.fabric().injection_link(1)), link * 0.5);
    }

    #[test]
    fn nic_stall_hits_both_directions() {
        let mut k = Kernel::new();
        let m = machine(&mut k);
        let inj = m.fabric().injection_link(0);
        let ej = m.fabric().ejection_link(0);
        let cap_in = k.link_capacity(inj);
        let cap_out = k.link_capacity(ej);
        let s = FaultSchedule::flapping_nic(
            0,
            SimDuration::from_micros(5),
            SimDuration::from_micros(5),
            SimDuration::from_micros(5),
            1,
        );
        s.install(&mut k, &m);
        k.schedule_at(SimTime::ZERO + SimDuration::from_micros(7), move |k| {
            assert_eq!(k.link_capacity(inj), cap_in * STALL_BANDWIDTH_FACTOR);
            assert_eq!(k.link_capacity(ej), cap_out * STALL_BANDWIDTH_FACTOR);
        });
        k.run_to_completion();
        assert_eq!(k.link_capacity(inj), cap_in);
        assert_eq!(k.link_capacity(ej), cap_out);
    }

    #[test]
    fn straggler_scales_engine_link() {
        let mut k = Kernel::new();
        let m = machine(&mut k);
        let engine = m.engine_link(7);
        let nominal = k.link_capacity(engine);
        FaultSchedule::straggler_gpu(7, SimDuration::from_micros(3), 0.25).install(&mut k, &m);
        k.run_to_completion();
        assert_eq!(k.link_capacity(engine), nominal * 0.25);
    }

    #[test]
    fn scenario_names_round_trip() {
        for sc in Scenario::ALL {
            assert_eq!(Scenario::parse(sc.name()), Some(sc), "{sc}");
            assert_eq!(format!("{sc}"), sc.name());
        }
        assert_eq!(Scenario::parse("kill-respawn"), Some(Scenario::KillRespawn));
        assert_eq!(Scenario::parse("no-such"), None);
    }

    #[test]
    fn rank_events_are_skipped_by_install_and_exposed_separately() {
        let s = FaultSchedule::kill_respawn(
            3,
            SimDuration::from_micros(10),
            SimDuration::from_micros(20),
        );
        assert!(s.has_rank_events());
        let evs: Vec<_> = s.rank_events().collect();
        assert_eq!(
            evs,
            vec![
                (SimDuration::from_micros(10), 3, FaultAction::Kill),
                (SimDuration::from_micros(30), 3, FaultAction::Respawn),
            ]
        );
        let mut k = Kernel::new();
        let m = machine(&mut k);
        s.install(&mut k, &m);
        k.run_to_completion();
        assert_eq!(k.executed_events(), 0, "rank events never install here");
    }

    #[test]
    fn shrink_mem_applies_and_restore_clears() {
        let mut k = Kernel::new();
        let m = machine(&mut k);
        let nominal = m.device_mem_limit(4);
        let s = FaultSchedule::oom_respawn(
            4,
            4,
            SimDuration::from_micros(5),
            SimDuration::from_micros(10),
            0.25,
        );
        s.install(&mut k, &m);
        let m2 = m.clone();
        k.schedule_at(SimTime::ZERO + SimDuration::from_micros(7), move |_| {
            assert_eq!(m2.device_mem_limit(4), (nominal as f64 * 0.25) as u64);
        });
        k.run_to_completion();
        assert_eq!(m.device_mem_limit(4), nominal, "restore clears override");
    }

    #[test]
    fn switch_target_covers_node_range_nics() {
        let mut k = Kernel::new();
        let m = machine(&mut k);
        let caps: Vec<f64> = (0..2)
            .map(|n| k.link_capacity(m.fabric().injection_link(n)))
            .collect();
        let s = FaultSchedule::degraded_switch(0, 2, SimDuration::from_micros(1), 0.5);
        s.install(&mut k, &m);
        k.run_to_completion();
        for (n, cap) in caps.iter().enumerate() {
            assert_eq!(
                k.link_capacity(m.fabric().injection_link(n)),
                cap * 0.5,
                "node {n} NIC degraded"
            );
            assert_eq!(
                k.link_capacity(m.fabric().ejection_link(n)),
                cap * 0.5,
                "node {n} ejection degraded"
            );
        }
    }

    #[test]
    #[should_panic(expected = "Kill/Respawn only apply to a rank target")]
    fn kill_on_device_target_rejected() {
        let _ = FaultSchedule::new().push(FaultEvent {
            at: SimDuration::ZERO,
            target: FaultTarget::Device { device: 0 },
            action: FaultAction::Kill,
        });
    }

    #[test]
    #[should_panic(expected = "ShrinkMem only applies to a device target")]
    fn shrink_mem_on_nic_target_rejected() {
        let _ = FaultSchedule::new().push(FaultEvent {
            at: SimDuration::ZERO,
            target: FaultTarget::Nic { node: 0 },
            action: FaultAction::ShrinkMem { mem_factor: 0.5 },
        });
    }

    #[test]
    fn cascading_schedule_is_well_formed_and_deterministic() {
        let s = FaultSchedule::cascading(
            0,
            0,
            1,
            5,
            SimDuration::from_micros(10),
            SimDuration::from_micros(10),
        );
        assert_eq!(s.len(), 1 + 4 + 1);
        let run = || {
            let mut k = Kernel::new();
            let m = machine(&mut k);
            s.install(&mut k, &m);
            k.run_to_completion();
            (k.now(), k.executed_events())
        };
        assert_eq!(run(), run());
    }
}
