#!/usr/bin/env bash
# Full local CI: formatting, lints, docs (warnings fatal), build, tests.
# Runs offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> cargo test --doc"
cargo test --offline --workspace --doc -q

echo "==> markdown link check (doccheck)"
./target/release/doccheck .

echo "==> bench smoke (simperf --quick)"
./target/release/simperf --quick --json /tmp/simperf_smoke.json
./target/release/simperf --validate /tmp/simperf_smoke.json

echo "==> chaos smoke (chaos --quick)"
./target/release/chaos --quick --iters 2 --metrics /tmp/chaos_smoke.json
test -s /tmp/chaos_smoke.json

echo "==> elastic recovery contract (chaos --scenario kill-respawn --validate)"
./target/release/chaos --quick --iters 2 --scenario kill-respawn --validate

echo "==> mapper smoke (mapperf --quick --validate)"
./target/release/mapperf --quick --validate --json /tmp/mapperf_smoke.json
test -s /tmp/mapperf_smoke.json

echo "==> service smoke (loadgen --quick --validate)"
./target/release/loadgen --quick --validate --json /tmp/loadgen_smoke.json
test -s /tmp/loadgen_smoke.json

echo "==> transport/overlap smoke (overlap --quick --validate)"
./target/release/overlap --quick --validate --json /tmp/overlap_smoke.json
test -s /tmp/overlap_smoke.json

echo "==> OK"
