//! Cross-crate metrics guarantees: exact conservation between the metrics
//! registry and the flow network's own accounting, determinism of rendered
//! reports, and presence of every subsystem's metrics after a full-stack
//! exchange.

use mpisim::{run_world, WorldConfig, WorldReport};
use stencil_core::{DomainBuilder, Methods, Neighborhood};
use topo::summit::summit_cluster;

fn exchange_world(nodes: usize, rpn: usize) -> WorldReport {
    let world = WorldConfig::new(summit_cluster(nodes), rpn).metrics(true);
    run_world(world, move |ctx| {
        let dom = DomainBuilder::new([48, 40, 32])
            .radius(1)
            .quantities(2)
            .neighborhood(Neighborhood::Full26)
            .methods(Methods::all())
            .build(ctx);
        for local in dom.locals() {
            local.fill(0, |p| (p[0] * 3 + p[1] * 5 + p[2] * 7) as f32);
        }
        dom.exchange(ctx);
        dom.exchange(ctx);
    })
}

#[test]
fn link_bytes_metric_matches_flow_accounting_exactly() {
    // The per-link delivered-bytes counter must agree with the flow
    // network's own `link_delivered` bookkeeping (surfaced per node in
    // `WorldReport::nic_injected`) — exactly, not approximately.
    let report = exchange_world(2, 3);
    let m = report.metrics.as_ref().expect("metrics enabled");
    assert_eq!(report.nic_injected.len(), 2);
    for (n, &injected) in report.nic_injected.iter().enumerate() {
        let link = format!("n{n}.inject");
        let counted = m.counter("flow", "link_delivered_bytes", &[("link", &link)]);
        assert_eq!(
            counted, injected,
            "metric for {link} disagrees with FlowNet accounting"
        );
        assert!(injected > 0, "expected inter-node traffic on {link}");
    }
}

#[test]
fn every_subsystem_reports_after_a_full_stack_exchange() {
    let report = exchange_world(2, 3);
    let m = report.metrics.as_ref().unwrap();
    assert!(m.counter("exchange", "exchanges", &[]) > 0);
    for subsystem in ["flow", "fifo", "gpusim", "mpi", "exchange"] {
        assert!(
            m.entries().iter().any(|(id, _)| id.subsystem == subsystem),
            "no metrics from subsystem {subsystem}"
        );
    }
    // The acceptance trio: per-link utilization, per-method bytes,
    // per-phase breakdown.
    let json = m.to_json();
    for needle in ["link_utilization", "method_bytes", "phase_ps"] {
        assert!(json.contains(needle), "JSON artifact missing {needle}");
    }
}

#[test]
fn metrics_reports_are_bit_identical_across_runs() {
    let a = exchange_world(2, 2);
    let b = exchange_world(2, 2);
    let (ma, mb) = (a.metrics.unwrap(), b.metrics.unwrap());
    assert_eq!(ma.to_json(), mb.to_json());
    assert_eq!(ma.to_text(), mb.to_text());
}

#[test]
fn metrics_do_not_change_virtual_time() {
    // Enabling metrics must be observation-only: the simulated clock and
    // event count of an identical program must not move.
    let run = |metrics: bool| {
        let world = WorldConfig::new(summit_cluster(1), 2).metrics(metrics);
        run_world(world, |ctx| {
            let dom = DomainBuilder::new([24, 24, 24])
                .radius(1)
                .quantities(1)
                .neighborhood(Neighborhood::Faces6)
                .methods(Methods::all())
                .build(ctx);
            dom.exchange(ctx);
        })
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(off.elapsed, on.elapsed);
    assert_eq!(off.executed_events, on.executed_events);
    assert!(off.metrics.is_none());
    assert!(on.metrics.is_some());
}

#[test]
fn exchange_method_bytes_match_send_plans() {
    // stencil-bench's harness plumbs ExchangeConfig::metrics through to the
    // same registry; the per-method byte counters must be stable and
    // consistent with the exchange count.
    let cfg = stencil_bench::ExchangeConfig::new(1, 2, 48)
        .iters(2)
        .metrics(true);
    let r = stencil_bench::measure_exchange(&cfg);
    let m = r.metrics.expect("metrics requested");
    let exchanges = m.counter("exchange", "exchanges", &[]);
    // 2 ranks x 2 iterations.
    assert_eq!(exchanges, 4);
    let total_method_bytes: u64 = m
        .entries()
        .iter()
        .filter(|(id, _)| id.subsystem == "exchange" && id.name == "method_bytes")
        .map(|(_, v)| match v {
            detsim::metrics::MetricValue::Counter(c) => *c,
            _ => 0,
        })
        .sum();
    assert!(total_method_bytes > 0);
    // Per-method bytes are recorded once per exchange from identical plans,
    // so the total must be divisible by the number of exchanges per rank.
    assert_eq!(total_method_bytes % 2, 0);
}
