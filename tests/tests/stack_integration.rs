//! Cross-crate integration: memory accounting, trace plumbing, NIC byte
//! accounting, and failure modes spanning gpusim + mpisim + stencil-core.

use std::sync::Arc;

use gpusim::GpuCostModel;
use mpisim::{run_world, WorldConfig};
use parking_lot::Mutex;
use stencil_core::{DomainBuilder, Methods, Neighborhood, Radius};
use topo::summit::summit_cluster;

#[test]
fn domain_build_accounts_device_memory() {
    let used: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let u2 = Arc::clone(&used);
    run_world(WorldConfig::new(summit_cluster(1), 6), move |ctx| {
        let dom = DomainBuilder::new([60, 60, 60])
            .radius(2)
            .quantities(4)
            .build(ctx);
        let m = ctx.machine();
        let dev = ctx.gpus()[0];
        // arrays + per-plan pack/recv buffers all land on this device
        let arrays: u64 = dom.locals()[0].bytes();
        let total = m.device_mem_used(dev);
        assert!(total >= arrays, "accounting must include the arrays");
        u2.lock().push(total);
    });
    let v = used.lock();
    assert_eq!(v.len(), 6);
    // symmetric domain -> similar allocation everywhere
    let max = *v.iter().max().unwrap() as f64;
    let min = *v.iter().min().unwrap() as f64;
    assert!(max / min < 1.6, "allocations should be balanced: {v:?}");
}

#[test]
fn oversized_domain_fails_with_oom() {
    let result = std::panic::catch_unwind(|| {
        run_world(WorldConfig::new(summit_cluster(1), 6), |ctx| {
            // 4000^3 cells * 4 quantities * 4 B over 6 GPUs >> 16 GiB/GPU —
            // must fail allocation, not silently truncate.
            let _ = DomainBuilder::new([4000, 4000, 4000])
                .radius(2)
                .quantities(4)
                .build(ctx);
        });
    });
    assert!(
        result.is_err(),
        "over-subscribed device memory must panic with OOM"
    );
}

#[test]
fn traced_exchange_contains_every_phase() {
    let world = WorldConfig::new(summit_cluster(2), 6).trace(true);
    let rep = run_world(world, |ctx| {
        let dom = DomainBuilder::new([48, 48, 48]).radius(1).build(ctx);
        ctx.barrier();
        dom.exchange(ctx);
    });
    let json = rep.trace_json.unwrap();
    for needle in ["pack", "unpack", "D2H", "H2D", "MPI net", "P2P"] {
        assert!(json.contains(needle), "trace missing {needle}");
    }
}

#[test]
fn nic_bytes_match_plan_summary() {
    // The bytes each node injects must equal the off-node bytes its ranks'
    // plans say they send.
    let planned: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
    let p2 = Arc::clone(&planned);
    let world = WorldConfig::new(summit_cluster(2), 6);
    let rep = run_world(world, move |ctx| {
        let dom = DomainBuilder::new([64, 64, 64])
            .radius(1)
            .quantities(2)
            .build(ctx);
        ctx.barrier();
        dom.exchange(ctx);
        if ctx.node() == 0 {
            // staged transfers from node 0 ranks are exactly the off-node ones
            *p2.lock() += dom.plan_summary().bytes(stencil_core::Method::Staged);
        }
    });
    let injected: u64 = rep.nic_injected[0];
    assert_eq!(
        injected,
        *planned.lock(),
        "NIC accounting must match the plan"
    );
}

#[test]
fn asymmetric_radius_full_stack() {
    // Radius 0 on some faces: those directions exchange nothing; the rest
    // still work end-to-end.
    let ok: Arc<Mutex<bool>> = Arc::new(Mutex::new(true));
    let o2 = Arc::clone(&ok);
    run_world(WorldConfig::new(summit_cluster(1), 6), move |ctx| {
        let dom = DomainBuilder::new([36, 30, 24])
            .radius_faces(Radius::faces(2, 1, 0, 0, 1, 2))
            .neighborhood(Neighborhood::Full26)
            .methods(Methods::all())
            .build(ctx);
        for l in dom.locals() {
            l.fill(0, |p| (p[0] + p[1] + p[2]) as f32);
        }
        ctx.barrier();
        dom.exchange(ctx);
        ctx.barrier();
        // -x halo must hold wrapped neighbor data (width 2)
        for l in dom.locals() {
            let o = l.interior.origin;
            for dx in 1..=2i64 {
                let got = l.get_local_f32(0, [-dx, 0, 0]);
                let gx = (o[0] as i64 - dx).rem_euclid(36);
                let want = (gx as u64 + o[1] + o[2]) as f32;
                if got != want {
                    *o2.lock() = false;
                }
            }
        }
    });
    assert!(*ok.lock());
}

#[test]
fn custom_cost_model_changes_virtual_time() {
    let run = |call_overhead_us: u64| {
        let mut cfg = WorldConfig::new(summit_cluster(1), 6);
        cfg.gpu_cost = GpuCostModel {
            call_overhead: detsim::SimDuration::from_micros(call_overhead_us),
            ..GpuCostModel::default()
        };
        run_world(cfg, |ctx| {
            let dom = DomainBuilder::new([48, 48, 48]).radius(1).build(ctx);
            ctx.barrier();
            dom.exchange(ctx);
        })
        .elapsed
    };
    let cheap = run(1);
    let pricey = run(20);
    assert!(
        pricey > cheap,
        "higher per-call CPU cost must lengthen the run: {cheap} vs {pricey}"
    );
}

#[test]
fn empirical_placement_measures_and_places() {
    use stencil_core::PlacementStrategy;
    // The measured-bandwidth placement must (a) run the probe protocol
    // collectively without deadlock, (b) produce a placement at least as
    // good as trivial, and (c) keep the exchange numerically correct.
    let ok: Arc<Mutex<bool>> = Arc::new(Mutex::new(true));
    let o2 = Arc::clone(&ok);
    run_world(WorldConfig::new(summit_cluster(1), 3), move |ctx| {
        let dom = DomainBuilder::new([144, 146, 70])
            .radius(1)
            .placement(PlacementStrategy::Empirical)
            .build(ctx);
        // same-node placement identical across ranks
        let assignment = dom.placement(0).gpu_for_subdomain.clone();
        let mut sorted = assignment.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5], "must be a bijection");
        for l in dom.locals() {
            l.fill(0, |p| (p[0] * 31 + p[1] * 17 + p[2]) as f32);
        }
        ctx.barrier();
        dom.exchange(ctx);
        ctx.barrier();
        for l in dom.locals() {
            let o = l.interior.origin;
            let got = l.get_local_f32(0, [-1, 0, 0]);
            let gx = (o[0] as i64 - 1).rem_euclid(144) as u64;
            if got != (gx * 31 + o[1] * 17 + o[2]) as f32 {
                *o2.lock() = false;
            }
        }
    });
    assert!(*ok.lock());
}

#[test]
fn measured_bandwidths_rank_triads_above_cross_socket() {
    use stencil_core::empirical::{measure_node_bandwidths, DEFAULT_PROBE_BYTES};
    let out: Arc<Mutex<Vec<Vec<f64>>>> = Arc::new(Mutex::new(Vec::new()));
    let o2 = Arc::clone(&out);
    run_world(WorldConfig::new(summit_cluster(1), 2), move |ctx| {
        let bw = measure_node_bandwidths(ctx, DEFAULT_PROBE_BYTES);
        if ctx.rank() == 1 {
            *o2.lock() = bw; // the non-probing rank got it via broadcast
        }
    });
    let bw = out.lock().clone();
    assert_eq!(bw.len(), 6);
    // under concurrent all-pairs load, a triad pair must be clearly faster
    // than a cross-socket pair (the X-Bus divides among all 9 cross pairs)
    assert!(
        bw[0][1] > bw[0][3] * 2.0,
        "triad {} vs cross {}",
        bw[0][1],
        bw[0][3]
    );
    assert!(bw[0][0] > bw[0][1], "on-device copy should top the matrix");
    // NVLink-direct pairs keep (close to) their dedicated 50 GB/s
    assert!(
        bw[0][1] > 35e9 && bw[0][1] < 55e9,
        "triad measured {}",
        bw[0][1]
    );
}

#[test]
fn exchange_timing_breakdown_is_consistent() {
    use stencil_core::Method;
    let out: Arc<Mutex<Option<stencil_core::ExchangeTiming>>> = Arc::new(Mutex::new(None));
    let o2 = Arc::clone(&out);
    run_world(WorldConfig::new(summit_cluster(2), 6), move |ctx| {
        let dom = DomainBuilder::new([64, 64, 64]).radius(1).build(ctx);
        ctx.barrier();
        let t = dom.exchange_timed(ctx);
        if ctx.rank() == 0 {
            *o2.lock() = Some(t);
        }
    });
    let t = out.lock().clone().unwrap();
    assert!(t.total.picos() > 0);
    // all plan methods appear, none exceeds the total
    for m in [Method::ColocatedMemcpy, Method::Staged] {
        let d = t.per_method.get(&m).copied().unwrap_or_default();
        assert!(d.picos() > 0, "{m} missing from breakdown");
        assert!(d <= t.total);
    }
    // something must define the critical path
    assert!(t.per_method.values().any(|&d| d == t.total));
    // at 2 nodes the remote (staged) path dominates the on-node one
    assert!(t.per_method[&Method::Staged] >= t.per_method[&Method::ColocatedMemcpy]);
}

#[test]
fn library_adapts_to_dgx_topology() {
    // 8 uniform NVSwitch GPUs: placement is indifferent (as Faraji et al.
    // observed for uniform nodes) but the full exchange still works and
    // peer transfers dominate.
    use stencil_core::Method;
    let plan: Arc<Mutex<String>> = Arc::new(Mutex::new(String::new()));
    let ok: Arc<Mutex<bool>> = Arc::new(Mutex::new(false));
    let p2 = Arc::clone(&plan);
    let o2 = Arc::clone(&ok);
    run_world(
        WorldConfig::new(topo::presets::dgx_cluster(1), 1),
        move |ctx| {
            let dom = DomainBuilder::new([32, 32, 16]).radius(1).build(ctx);
            assert_eq!(dom.partition().gpus_per_node(), 8);
            *p2.lock() = dom.plan_summary().to_string();
            assert!(dom.plan_summary().count(Method::PeerMemcpy) > 0);
            for l in dom.locals() {
                l.fill(0, |p| (p[0] + 100 * p[1] + 10_000 * p[2]) as f32);
            }
            ctx.barrier();
            dom.exchange(ctx);
            ctx.barrier();
            let l = &dom.locals()[0];
            let o = l.interior.origin;
            let got = l.get_local_f32(0, [-1, 0, 0]);
            let gx = (o[0] as i64 - 1).rem_euclid(32) as u64;
            *o2.lock() = got == (gx + 100 * o[1] + 10_000 * o[2]) as f32;
        },
    );
    assert!(*ok.lock(), "plan: {}", plan.lock());
}

#[test]
fn library_adapts_to_pcie_workstation() {
    // 4 GPUs with host-bridge-only P2P: peer access still "works" (SYS
    // class) but every path crosses the single PCIe bus; correctness holds.
    let ok: Arc<Mutex<bool>> = Arc::new(Mutex::new(false));
    let o2 = Arc::clone(&ok);
    run_world(
        WorldConfig::new(topo::presets::pcie_workstation_cluster(4), 1),
        move |ctx| {
            let dom = DomainBuilder::new([24, 24, 12]).radius(1).build(ctx);
            assert_eq!(dom.partition().gpus_per_node(), 4);
            for l in dom.locals() {
                l.fill(0, |p| (p[0] * 7 + p[1] * 3 + p[2]) as f32);
            }
            ctx.barrier();
            dom.exchange(ctx);
            ctx.barrier();
            let l = &dom.locals()[1];
            let o = l.interior.origin;
            let got = l.get_local_f32(0, [-1, 0, 0]);
            let gx = (o[0] as i64 - 1).rem_euclid(24) as u64;
            *o2.lock() = got == (gx * 7 + o[1] * 3 + o[2]) as f32;
        },
    );
    assert!(*ok.lock());
}

#[test]
fn uniform_topology_makes_placement_indifferent() {
    // On NVSwitch, node-aware and trivial placements have equal QAP cost.
    use stencil_core::dim3::{Boundary, Neighborhood};
    use stencil_core::{placement, Partition, PlacementStrategy, Radius};
    let node = topo::presets::dgx_node();
    let disc = topo::NodeDiscovery::discover(&node);
    let part = Partition::new([1440, 1452, 700], 1, 8);
    let r = Radius::constant(2);
    let aware = placement::place(
        &part,
        [0, 0, 0],
        &disc,
        Neighborhood::Full26,
        &r,
        4,
        4,
        PlacementStrategy::NodeAware,
        Boundary::Periodic,
    );
    let trivial = placement::place(
        &part,
        [0, 0, 0],
        &disc,
        Neighborhood::Full26,
        &r,
        4,
        4,
        PlacementStrategy::Trivial,
        Boundary::Periodic,
    );
    let rel = (aware.cost - trivial.cost).abs() / trivial.cost.max(1e-30);
    assert!(rel < 1e-9, "uniform links: all placements equal, got {rel}");
}
