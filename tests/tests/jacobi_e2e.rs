//! End-to-end application test: distributed Jacobi relaxation must be
//! bit-identical to a serial reference across node/rank/method layouts —
//! this exercises every layer (partition, placement, specialization,
//! exchange state machines, simulated CUDA + MPI data planes) at once.

use std::sync::Arc;

use mpisim::{run_world, WorldConfig};
use parking_lot::Mutex;
use stencil_core::{DomainBuilder, Methods, Neighborhood};
use stencil_examples::{jacobi_step_work, jacobi_traffic, SerialGrid};
use topo::summit::summit_cluster;

fn jacobi_case(nodes: usize, rpn: usize, methods: Methods, cuda_aware: bool, steps: usize) {
    const DOMAIN: [u64; 3] = [30, 24, 18];
    const K: f32 = 0.09;
    let init = |p: [u64; 3]| ((p[0] * 3 + p[1] * 7 + p[2] * 11) % 53) as f32;

    let worst: Arc<Mutex<f32>> = Arc::new(Mutex::new(0.0));
    let w2 = Arc::clone(&worst);
    let world = WorldConfig::new(summit_cluster(nodes), rpn).cuda_aware(cuda_aware);
    run_world(world, move |ctx| {
        let dom = DomainBuilder::new(DOMAIN)
            .radius(1)
            .quantities(2)
            .neighborhood(Neighborhood::Faces6)
            .methods(methods)
            .build(ctx);
        for local in dom.locals() {
            local.fill(0, init);
        }
        ctx.barrier();
        for step in 0..steps {
            let (qs, qd) = (step % 2, (step + 1) % 2);
            dom.exchange(ctx);
            let ks: Vec<_> = dom
                .locals()
                .iter()
                .map(|l| {
                    l.launch_compute(
                        ctx.sim(),
                        "jacobi",
                        jacobi_traffic(l),
                        Some(jacobi_step_work(l, qs, qd, K)),
                    )
                })
                .collect();
            ctx.sim().wait_all(&ks);
            ctx.barrier();
        }
        let mut reference = SerialGrid::init(DOMAIN, init);
        for _ in 0..steps {
            reference.jacobi_step(K);
        }
        let qf = steps % 2;
        let mut local_worst = 0.0f32;
        for local in dom.locals() {
            let o = local.interior.origin;
            let e = local.interior.extent;
            for z in 0..e[2] {
                for y in 0..e[1] {
                    for x in 0..e[0] {
                        let got = local.get_global_f32(qf, [o[0] + x, o[1] + y, o[2] + z]);
                        let want =
                            reference.at((o[0] + x) as i64, (o[1] + y) as i64, (o[2] + z) as i64);
                        local_worst = local_worst.max((got - want).abs());
                    }
                }
            }
        }
        let mut g = w2.lock();
        *g = g.max(local_worst);
    });
    assert_eq!(
        *worst.lock(),
        0.0,
        "distributed Jacobi diverged from reference"
    );
}

#[test]
fn one_rank_all_gpus() {
    jacobi_case(1, 1, Methods::all(), false, 4);
}

#[test]
fn six_ranks_colocated() {
    jacobi_case(1, 6, Methods::all(), false, 4);
}

#[test]
fn staged_only_still_exact() {
    jacobi_case(1, 6, Methods::staged_only(), false, 3);
}

#[test]
fn two_nodes_mixed_paths() {
    jacobi_case(2, 3, Methods::all(), false, 3);
}

#[test]
fn two_nodes_cuda_aware() {
    jacobi_case(2, 6, Methods::all_with_cuda_aware(), true, 3);
}

#[test]
fn three_nodes_uneven_extents() {
    jacobi_case(3, 2, Methods::all(), false, 3);
}
