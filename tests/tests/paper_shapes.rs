//! Guard the paper's qualitative results at (fast) reduced scale: if a
//! change to the simulator or the library breaks one of the headline
//! shapes, these tests catch it before the full benchmark harness would.

use stencil_bench::{measure_exchange, weak_scaling_extent, ExchangeConfig};
use stencil_core::{Methods, PlacementStrategy};

/// Fig. 12a: staged-only exchange gets faster as ranks per node grow.
#[test]
fn staged_improves_with_ranks_per_node() {
    let t = |rpn| {
        measure_exchange(
            &ExchangeConfig::new(1, rpn, 930)
                .methods(Methods::staged_only())
                .iters(2),
        )
        .mean
    };
    let (r1, r2, r6) = (t(1), t(2), t(6));
    assert!(
        r1 > r2 && r2 > r6,
        "staged should improve 1r->2r->6r: {r1} {r2} {r6}"
    );
}

/// Fig. 12a: full specialization is several times faster than staged-only
/// on a single node (paper: ~6x at 6 ranks).
#[test]
fn specialization_beats_staged_single_node() {
    let staged = measure_exchange(
        &ExchangeConfig::new(1, 6, 930)
            .methods(Methods::staged_only())
            .iters(2),
    )
    .mean;
    let full = measure_exchange(
        &ExchangeConfig::new(1, 6, 930)
            .methods(Methods::all())
            .iters(2),
    )
    .mean;
    let speedup = staged / full;
    assert!(
        (4.0..12.0).contains(&speedup),
        "expected ~6x single-node specialization speedup, got {speedup:.2}x"
    );
}

/// Fig. 12a: specialization also beats CUDA-aware MPI (paper: ~2x), and
/// CUDA-aware beats plain staged on a single node.
#[test]
fn cuda_aware_sits_between_staged_and_specialized_on_node() {
    let staged = measure_exchange(
        &ExchangeConfig::new(1, 6, 930)
            .methods(Methods::staged_only())
            .iters(2),
    )
    .mean;
    let ca = measure_exchange(
        &ExchangeConfig::new(1, 6, 930)
            .methods(Methods::cuda_aware_only())
            .cuda_aware(true)
            .iters(2),
    )
    .mean;
    let full = measure_exchange(
        &ExchangeConfig::new(1, 6, 930)
            .methods(Methods::all())
            .iters(2),
    )
    .mean;
    assert!(
        ca < staged,
        "CUDA-aware should beat staged on-node: {ca} vs {staged}"
    );
    assert!(
        full < ca,
        "specialization should beat CUDA-aware: {full} vs {ca}"
    );
}

/// Fig. 12a: enabling the kernel method on top of peer has little effect.
#[test]
fn kernel_method_is_marginal() {
    let peer = measure_exchange(
        &ExchangeConfig::new(1, 6, 930)
            .methods(Methods::staged_only().with_colocated().with_peer())
            .iters(2),
    )
    .mean;
    let kernel = measure_exchange(
        &ExchangeConfig::new(1, 6, 930)
            .methods(Methods::all())
            .iters(2),
    )
    .mean;
    let delta = (peer - kernel).abs() / peer;
    assert!(
        delta < 0.15,
        "+kernel should be within 15% of +peer: {delta:.2}"
    );
}

/// Fig. 11: node-aware placement beats trivial placement on the paper's
/// worst-case aspect-ratio domain (paper: ~20%).
#[test]
fn node_aware_placement_beats_trivial() {
    let mk = |p| {
        measure_exchange(
            &ExchangeConfig::new(1, 6, 0)
                .domain([1440, 1452, 700])
                .methods(Methods::all())
                .placement(p)
                .iters(2),
        )
        .mean
    };
    let aware = mk(PlacementStrategy::NodeAware);
    let trivial = mk(PlacementStrategy::Trivial);
    let gain = trivial / aware;
    assert!(
        gain > 1.10,
        "expected >=10% placement speedup (paper: 20%), got {gain:.3}x"
    );
}

/// Fig. 12b: weak scaling flattens — going from 8 to 16 nodes changes the
/// exchange time by far less than going from 1 node to 8.
#[test]
fn weak_scaling_flattens() {
    let t = |nodes: usize| {
        let extent = weak_scaling_extent(750, nodes * 6);
        measure_exchange(
            &ExchangeConfig::new(nodes, 6, extent)
                .methods(Methods::all())
                .iters(2),
        )
        .mean
    };
    let (t1, t8, t16) = (t(1), t(8), t(16));
    assert!(t8 > t1, "off-node exchange must cost more than on-node");
    let late_growth = (t16 - t8).abs() / t8;
    assert!(
        late_growth < 0.35,
        "curve should flatten 8->16 nodes: {late_growth:.2}"
    );
}

/// Fig. 12c: with CUDA-aware MPI the exchange degrades as nodes grow, and
/// ends up clearly slower than the plain staged path.
#[test]
fn cuda_aware_degrades_at_scale() {
    let ca = |nodes: usize| {
        let extent = weak_scaling_extent(750, nodes * 6);
        measure_exchange(
            &ExchangeConfig::new(nodes, 6, extent)
                .methods(Methods::cuda_aware_only())
                .cuda_aware(true)
                .iters(2),
        )
        .mean
    };
    let staged8 = {
        let extent = weak_scaling_extent(750, 8 * 6);
        measure_exchange(
            &ExchangeConfig::new(8, 6, extent)
                .methods(Methods::staged_only())
                .iters(2),
        )
        .mean
    };
    let (c1, c8) = (ca(1), ca(8));
    assert!(
        c8 > c1 * 2.0,
        "CUDA-aware should degrade with scale: {c1} -> {c8}"
    );
    assert!(
        c8 > staged8 * 1.15,
        "CUDA-aware should lose to staged at scale: {c8} vs {staged8}"
    );
}

/// Fig. 13: strong scaling — the same 1363^3 problem gets faster with more
/// nodes over the scaling region.
#[test]
fn strong_scaling_reduces_exchange_time() {
    let t = |nodes: usize| {
        measure_exchange(
            &ExchangeConfig::new(nodes, 6, 1363)
                .methods(Methods::all())
                .iters(2),
        )
        .mean
    };
    let (t1, t4, t16) = (t(1), t(4), t(16));
    assert!(t4 < t1 * 6.0, "sanity");
    assert!(t16 < t4, "strong scaling 4 -> 16 nodes: {t4} -> {t16}");
}
