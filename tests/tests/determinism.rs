//! The whole stack must be exactly reproducible: identical virtual times
//! across repeated runs, identical placements on every rank, identical
//! traces.

use std::sync::Arc;

use parking_lot::Mutex;
use stencil_bench::{measure_exchange, ExchangeConfig};
use stencil_core::{DomainBuilder, Methods};
use topo::summit::summit_cluster;

#[test]
fn exchange_times_are_bit_identical_across_runs() {
    let run = || {
        let cfg = ExchangeConfig::new(2, 6, 400)
            .methods(Methods::all())
            .iters(3);
        measure_exchange(&cfg).per_iter
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn cuda_aware_runs_are_deterministic_too() {
    let run = || {
        let cfg = ExchangeConfig::new(2, 6, 400)
            .methods(Methods::cuda_aware_only())
            .cuda_aware(true)
            .iters(2);
        measure_exchange(&cfg).per_iter
    };
    assert_eq!(run(), run());
}

#[test]
fn repeated_exchanges_take_identical_time() {
    // After the first exchange the system returns to quiescence, so every
    // following exchange must cost exactly the same virtual time.
    let cfg = ExchangeConfig::new(1, 6, 500)
        .methods(Methods::all())
        .iters(4);
    let r = measure_exchange(&cfg);
    for w in r.per_iter.windows(2) {
        // identical up to f64 rounding of (wtime - wtime) at different
        // absolute offsets; the underlying picosecond durations are equal
        assert!(
            (w[0] - w[1]).abs() < w[0] * 1e-9,
            "iterations differ: {:?}",
            r.per_iter
        );
    }
}

#[test]
fn every_rank_computes_the_same_placement() {
    let placements: Arc<Mutex<Vec<Vec<usize>>>> = Arc::new(Mutex::new(Vec::new()));
    let p2 = Arc::clone(&placements);
    let world = mpisim::WorldConfig::new(summit_cluster(2), 6);
    mpisim::run_world(world, move |ctx| {
        let dom = DomainBuilder::new([1440, 1452, 700])
            .radius(2)
            .quantities(4)
            .build(ctx);
        let mine: Vec<usize> = (0..2)
            .flat_map(|n| dom.placement(n).gpu_for_subdomain.clone())
            .collect();
        p2.lock().push(mine);
    });
    let all = placements.lock();
    assert_eq!(all.len(), 12);
    for p in all.iter() {
        assert_eq!(p, &all[0], "ranks disagree on placement");
    }
}

#[test]
fn trace_output_is_deterministic() {
    let run = || {
        let world = mpisim::WorldConfig::new(summit_cluster(1), 2).trace(true);
        let rep = mpisim::run_world(world, |ctx| {
            let dom = DomainBuilder::new([48, 48, 48]).radius(1).build(ctx);
            ctx.barrier();
            dom.exchange(ctx);
        });
        rep.trace_json.unwrap()
    };
    assert_eq!(run(), run());
}
