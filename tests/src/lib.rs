//! Placeholder library target; the content of this package is its
//! integration tests (`tests/tests/*.rs`).
