/root/repo/target/release/deps/table1-23ec3c3925f336c6.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-23ec3c3925f336c6: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
