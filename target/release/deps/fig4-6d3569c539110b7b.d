/root/repo/target/release/deps/fig4-6d3569c539110b7b.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-6d3569c539110b7b: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
