/root/repo/target/release/deps/topo-6f8b065386ec5b7f.d: crates/topo/src/lib.rs crates/topo/src/cluster.rs crates/topo/src/discover.rs crates/topo/src/node.rs crates/topo/src/presets.rs crates/topo/src/summit.rs

/root/repo/target/release/deps/libtopo-6f8b065386ec5b7f.rlib: crates/topo/src/lib.rs crates/topo/src/cluster.rs crates/topo/src/discover.rs crates/topo/src/node.rs crates/topo/src/presets.rs crates/topo/src/summit.rs

/root/repo/target/release/deps/libtopo-6f8b065386ec5b7f.rmeta: crates/topo/src/lib.rs crates/topo/src/cluster.rs crates/topo/src/discover.rs crates/topo/src/node.rs crates/topo/src/presets.rs crates/topo/src/summit.rs

crates/topo/src/lib.rs:
crates/topo/src/cluster.rs:
crates/topo/src/discover.rs:
crates/topo/src/node.rs:
crates/topo/src/presets.rs:
crates/topo/src/summit.rs:
