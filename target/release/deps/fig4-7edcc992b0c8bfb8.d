/root/repo/target/release/deps/fig4-7edcc992b0c8bfb8.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-7edcc992b0c8bfb8: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
