/root/repo/target/release/deps/mpisim-3619ade08f94c1a8.d: crates/mpisim/src/lib.rs crates/mpisim/src/config.rs crates/mpisim/src/rank.rs crates/mpisim/src/transport.rs crates/mpisim/src/world.rs

/root/repo/target/release/deps/libmpisim-3619ade08f94c1a8.rlib: crates/mpisim/src/lib.rs crates/mpisim/src/config.rs crates/mpisim/src/rank.rs crates/mpisim/src/transport.rs crates/mpisim/src/world.rs

/root/repo/target/release/deps/libmpisim-3619ade08f94c1a8.rmeta: crates/mpisim/src/lib.rs crates/mpisim/src/config.rs crates/mpisim/src/rank.rs crates/mpisim/src/transport.rs crates/mpisim/src/world.rs

crates/mpisim/src/lib.rs:
crates/mpisim/src/config.rs:
crates/mpisim/src/rank.rs:
crates/mpisim/src/transport.rs:
crates/mpisim/src/world.rs:
