/root/repo/target/release/deps/gpusim-748c77f43d2178ea.d: crates/gpusim/src/lib.rs crates/gpusim/src/buffer.rs crates/gpusim/src/config.rs crates/gpusim/src/error.rs crates/gpusim/src/machine.rs crates/gpusim/src/ops.rs

/root/repo/target/release/deps/libgpusim-748c77f43d2178ea.rlib: crates/gpusim/src/lib.rs crates/gpusim/src/buffer.rs crates/gpusim/src/config.rs crates/gpusim/src/error.rs crates/gpusim/src/machine.rs crates/gpusim/src/ops.rs

/root/repo/target/release/deps/libgpusim-748c77f43d2178ea.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/buffer.rs crates/gpusim/src/config.rs crates/gpusim/src/error.rs crates/gpusim/src/machine.rs crates/gpusim/src/ops.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/buffer.rs:
crates/gpusim/src/config.rs:
crates/gpusim/src/error.rs:
crates/gpusim/src/machine.rs:
crates/gpusim/src/ops.rs:
