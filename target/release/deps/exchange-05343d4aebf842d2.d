/root/repo/target/release/deps/exchange-05343d4aebf842d2.d: crates/bench/benches/exchange.rs

/root/repo/target/release/deps/exchange-05343d4aebf842d2: crates/bench/benches/exchange.rs

crates/bench/benches/exchange.rs:
