/root/repo/target/release/deps/simperf-d27f17550b838291.d: crates/bench/src/bin/simperf.rs

/root/repo/target/release/deps/simperf-d27f17550b838291: crates/bench/src/bin/simperf.rs

crates/bench/src/bin/simperf.rs:
