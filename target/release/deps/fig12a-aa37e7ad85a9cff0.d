/root/repo/target/release/deps/fig12a-aa37e7ad85a9cff0.d: crates/bench/src/bin/fig12a.rs

/root/repo/target/release/deps/fig12a-aa37e7ad85a9cff0: crates/bench/src/bin/fig12a.rs

crates/bench/src/bin/fig12a.rs:
