/root/repo/target/release/deps/ablation-0f4340d0b4081329.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-0f4340d0b4081329: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
