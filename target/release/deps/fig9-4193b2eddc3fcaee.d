/root/repo/target/release/deps/fig9-4193b2eddc3fcaee.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-4193b2eddc3fcaee: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
