/root/repo/target/release/deps/topo-e80ac1327522da52.d: crates/topo/src/lib.rs crates/topo/src/cluster.rs crates/topo/src/discover.rs crates/topo/src/node.rs crates/topo/src/presets.rs crates/topo/src/summit.rs

/root/repo/target/release/deps/libtopo-e80ac1327522da52.rlib: crates/topo/src/lib.rs crates/topo/src/cluster.rs crates/topo/src/discover.rs crates/topo/src/node.rs crates/topo/src/presets.rs crates/topo/src/summit.rs

/root/repo/target/release/deps/libtopo-e80ac1327522da52.rmeta: crates/topo/src/lib.rs crates/topo/src/cluster.rs crates/topo/src/discover.rs crates/topo/src/node.rs crates/topo/src/presets.rs crates/topo/src/summit.rs

crates/topo/src/lib.rs:
crates/topo/src/cluster.rs:
crates/topo/src/discover.rs:
crates/topo/src/node.rs:
crates/topo/src/presets.rs:
crates/topo/src/summit.rs:
