/root/repo/target/release/deps/fig12c-d746177a1891173a.d: crates/bench/src/bin/fig12c.rs

/root/repo/target/release/deps/fig12c-d746177a1891173a: crates/bench/src/bin/fig12c.rs

crates/bench/src/bin/fig12c.rs:
