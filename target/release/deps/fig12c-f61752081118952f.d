/root/repo/target/release/deps/fig12c-f61752081118952f.d: crates/bench/src/bin/fig12c.rs

/root/repo/target/release/deps/fig12c-f61752081118952f: crates/bench/src/bin/fig12c.rs

crates/bench/src/bin/fig12c.rs:
