/root/repo/target/release/deps/mpisim-682aa8123cdf25b9.d: crates/mpisim/src/lib.rs crates/mpisim/src/config.rs crates/mpisim/src/rank.rs crates/mpisim/src/transport.rs crates/mpisim/src/world.rs

/root/repo/target/release/deps/libmpisim-682aa8123cdf25b9.rlib: crates/mpisim/src/lib.rs crates/mpisim/src/config.rs crates/mpisim/src/rank.rs crates/mpisim/src/transport.rs crates/mpisim/src/world.rs

/root/repo/target/release/deps/libmpisim-682aa8123cdf25b9.rmeta: crates/mpisim/src/lib.rs crates/mpisim/src/config.rs crates/mpisim/src/rank.rs crates/mpisim/src/transport.rs crates/mpisim/src/world.rs

crates/mpisim/src/lib.rs:
crates/mpisim/src/config.rs:
crates/mpisim/src/rank.rs:
crates/mpisim/src/transport.rs:
crates/mpisim/src/world.rs:
