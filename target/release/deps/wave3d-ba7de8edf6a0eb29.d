/root/repo/target/release/deps/wave3d-ba7de8edf6a0eb29.d: examples/wave3d.rs

/root/repo/target/release/deps/wave3d-ba7de8edf6a0eb29: examples/wave3d.rs

examples/wave3d.rs:
