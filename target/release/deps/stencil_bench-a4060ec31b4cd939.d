/root/repo/target/release/deps/stencil_bench-a4060ec31b4cd939.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/release/deps/libstencil_bench-a4060ec31b4cd939.rlib: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/release/deps/libstencil_bench-a4060ec31b4cd939.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
