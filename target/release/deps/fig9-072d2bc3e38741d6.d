/root/repo/target/release/deps/fig9-072d2bc3e38741d6.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-072d2bc3e38741d6: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
