/root/repo/target/release/deps/fig13-204868eb83b20807.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-204868eb83b20807: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
