/root/repo/target/release/deps/fig11-106d0670b82455cf.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-106d0670b82455cf: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
