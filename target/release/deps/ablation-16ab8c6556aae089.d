/root/repo/target/release/deps/ablation-16ab8c6556aae089.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-16ab8c6556aae089: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
