/root/repo/target/release/deps/fig12a-8c31f33db8c766d5.d: crates/bench/src/bin/fig12a.rs

/root/repo/target/release/deps/fig12a-8c31f33db8c766d5: crates/bench/src/bin/fig12a.rs

crates/bench/src/bin/fig12a.rs:
