/root/repo/target/release/deps/quickstart-9005de5a6165d003.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-9005de5a6165d003: examples/quickstart.rs

examples/quickstart.rs:
