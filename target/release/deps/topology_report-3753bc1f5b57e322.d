/root/repo/target/release/deps/topology_report-3753bc1f5b57e322.d: examples/topology_report.rs

/root/repo/target/release/deps/topology_report-3753bc1f5b57e322: examples/topology_report.rs

examples/topology_report.rs:
