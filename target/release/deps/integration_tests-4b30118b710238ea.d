/root/repo/target/release/deps/integration_tests-4b30118b710238ea.d: tests/src/lib.rs

/root/repo/target/release/deps/libintegration_tests-4b30118b710238ea.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libintegration_tests-4b30118b710238ea.rmeta: tests/src/lib.rs

tests/src/lib.rs:
