/root/repo/target/release/deps/fig12b-be9b32011ab6c30a.d: crates/bench/src/bin/fig12b.rs

/root/repo/target/release/deps/fig12b-be9b32011ab6c30a: crates/bench/src/bin/fig12b.rs

crates/bench/src/bin/fig12b.rs:
