/root/repo/target/release/deps/jacobi3d-b986a7c604ce2dfb.d: examples/jacobi3d.rs

/root/repo/target/release/deps/jacobi3d-b986a7c604ce2dfb: examples/jacobi3d.rs

examples/jacobi3d.rs:
