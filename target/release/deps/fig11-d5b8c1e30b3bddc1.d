/root/repo/target/release/deps/fig11-d5b8c1e30b3bddc1.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-d5b8c1e30b3bddc1: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
