/root/repo/target/release/deps/fig3-62dd628f19c9314a.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-62dd628f19c9314a: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
