/root/repo/target/release/deps/stencil_examples-9c6614b63741e84a.d: examples/src/lib.rs

/root/repo/target/release/deps/libstencil_examples-9c6614b63741e84a.rlib: examples/src/lib.rs

/root/repo/target/release/deps/libstencil_examples-9c6614b63741e84a.rmeta: examples/src/lib.rs

examples/src/lib.rs:
