/root/repo/target/release/deps/stencil_bench-10c5f7a7a6d2f040.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/release/deps/libstencil_bench-10c5f7a7a6d2f040.rlib: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/release/deps/libstencil_bench-10c5f7a7a6d2f040.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
