/root/repo/target/release/deps/tmpprof-2f93529ca10f121c.d: crates/bench/src/bin/tmpprof.rs

/root/repo/target/release/deps/tmpprof-2f93529ca10f121c: crates/bench/src/bin/tmpprof.rs

crates/bench/src/bin/tmpprof.rs:
