/root/repo/target/release/deps/placement_explorer-1e8b8975feddbc5a.d: examples/placement_explorer.rs

/root/repo/target/release/deps/placement_explorer-1e8b8975feddbc5a: examples/placement_explorer.rs

examples/placement_explorer.rs:
