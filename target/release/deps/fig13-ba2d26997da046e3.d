/root/repo/target/release/deps/fig13-ba2d26997da046e3.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-ba2d26997da046e3: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
