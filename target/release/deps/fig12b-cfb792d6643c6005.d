/root/repo/target/release/deps/fig12b-cfb792d6643c6005.d: crates/bench/src/bin/fig12b.rs

/root/repo/target/release/deps/fig12b-cfb792d6643c6005: crates/bench/src/bin/fig12b.rs

crates/bench/src/bin/fig12b.rs:
