/root/repo/target/release/deps/fig3-83f7d5a764a90647.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-83f7d5a764a90647: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
