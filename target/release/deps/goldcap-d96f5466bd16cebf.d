/root/repo/target/release/deps/goldcap-d96f5466bd16cebf.d: crates/bench/src/bin/goldcap.rs

/root/repo/target/release/deps/goldcap-d96f5466bd16cebf: crates/bench/src/bin/goldcap.rs

crates/bench/src/bin/goldcap.rs:
