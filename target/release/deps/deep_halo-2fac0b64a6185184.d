/root/repo/target/release/deps/deep_halo-2fac0b64a6185184.d: examples/deep_halo.rs

/root/repo/target/release/deps/deep_halo-2fac0b64a6185184: examples/deep_halo.rs

examples/deep_halo.rs:
