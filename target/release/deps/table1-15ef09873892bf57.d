/root/repo/target/release/deps/table1-15ef09873892bf57.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-15ef09873892bf57: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
