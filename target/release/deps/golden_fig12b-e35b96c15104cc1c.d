/root/repo/target/release/deps/golden_fig12b-e35b96c15104cc1c.d: crates/bench/tests/golden_fig12b.rs

/root/repo/target/release/deps/golden_fig12b-e35b96c15104cc1c: crates/bench/tests/golden_fig12b.rs

crates/bench/tests/golden_fig12b.rs:
