/root/repo/target/release/deps/gpusim-3855741dc1160388.d: crates/gpusim/src/lib.rs crates/gpusim/src/buffer.rs crates/gpusim/src/config.rs crates/gpusim/src/error.rs crates/gpusim/src/machine.rs crates/gpusim/src/ops.rs

/root/repo/target/release/deps/libgpusim-3855741dc1160388.rlib: crates/gpusim/src/lib.rs crates/gpusim/src/buffer.rs crates/gpusim/src/config.rs crates/gpusim/src/error.rs crates/gpusim/src/machine.rs crates/gpusim/src/ops.rs

/root/repo/target/release/deps/libgpusim-3855741dc1160388.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/buffer.rs crates/gpusim/src/config.rs crates/gpusim/src/error.rs crates/gpusim/src/machine.rs crates/gpusim/src/ops.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/buffer.rs:
crates/gpusim/src/config.rs:
crates/gpusim/src/error.rs:
crates/gpusim/src/machine.rs:
crates/gpusim/src/ops.rs:
