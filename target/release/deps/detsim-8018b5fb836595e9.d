/root/repo/target/release/deps/detsim-8018b5fb836595e9.d: crates/detsim/src/lib.rs crates/detsim/src/fifo.rs crates/detsim/src/flow.rs crates/detsim/src/kernel.rs crates/detsim/src/metrics.rs crates/detsim/src/park.rs crates/detsim/src/sched.rs crates/detsim/src/time.rs crates/detsim/src/trace.rs

/root/repo/target/release/deps/libdetsim-8018b5fb836595e9.rlib: crates/detsim/src/lib.rs crates/detsim/src/fifo.rs crates/detsim/src/flow.rs crates/detsim/src/kernel.rs crates/detsim/src/metrics.rs crates/detsim/src/park.rs crates/detsim/src/sched.rs crates/detsim/src/time.rs crates/detsim/src/trace.rs

/root/repo/target/release/deps/libdetsim-8018b5fb836595e9.rmeta: crates/detsim/src/lib.rs crates/detsim/src/fifo.rs crates/detsim/src/flow.rs crates/detsim/src/kernel.rs crates/detsim/src/metrics.rs crates/detsim/src/park.rs crates/detsim/src/sched.rs crates/detsim/src/time.rs crates/detsim/src/trace.rs

crates/detsim/src/lib.rs:
crates/detsim/src/fifo.rs:
crates/detsim/src/flow.rs:
crates/detsim/src/kernel.rs:
crates/detsim/src/metrics.rs:
crates/detsim/src/park.rs:
crates/detsim/src/sched.rs:
crates/detsim/src/time.rs:
crates/detsim/src/trace.rs:
