/root/repo/target/release/deps/parking_lot-8d6dcc7a783477bf.d: crates/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-8d6dcc7a783477bf.rlib: crates/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-8d6dcc7a783477bf.rmeta: crates/parking_lot/src/lib.rs

crates/parking_lot/src/lib.rs:
