(function() {
    const implementors = Object.fromEntries([["detsim",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.AddAssign.html\" title=\"trait core::ops::arith::AddAssign\">AddAssign</a> for <a class=\"struct\" href=\"detsim/struct.SimDuration.html\" title=\"struct detsim::SimDuration\">SimDuration</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.AddAssign.html\" title=\"trait core::ops::arith::AddAssign\">AddAssign</a>&lt;<a class=\"struct\" href=\"detsim/struct.SimDuration.html\" title=\"struct detsim::SimDuration\">SimDuration</a>&gt; for <a class=\"struct\" href=\"detsim/struct.SimTime.html\" title=\"struct detsim::SimTime\">SimTime</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[686]}