/root/repo/target/debug/deps/streams-cd0e3e18f3e310b6.d: crates/gpusim/tests/streams.rs Cargo.toml

/root/repo/target/debug/deps/libstreams-cd0e3e18f3e310b6.rmeta: crates/gpusim/tests/streams.rs Cargo.toml

crates/gpusim/tests/streams.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
