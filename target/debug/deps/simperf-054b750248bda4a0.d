/root/repo/target/debug/deps/simperf-054b750248bda4a0.d: crates/bench/src/bin/simperf.rs

/root/repo/target/debug/deps/simperf-054b750248bda4a0: crates/bench/src/bin/simperf.rs

crates/bench/src/bin/simperf.rs:
