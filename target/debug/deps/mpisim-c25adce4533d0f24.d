/root/repo/target/debug/deps/mpisim-c25adce4533d0f24.d: crates/mpisim/src/lib.rs crates/mpisim/src/config.rs crates/mpisim/src/rank.rs crates/mpisim/src/transport.rs crates/mpisim/src/world.rs

/root/repo/target/debug/deps/libmpisim-c25adce4533d0f24.rmeta: crates/mpisim/src/lib.rs crates/mpisim/src/config.rs crates/mpisim/src/rank.rs crates/mpisim/src/transport.rs crates/mpisim/src/world.rs

crates/mpisim/src/lib.rs:
crates/mpisim/src/config.rs:
crates/mpisim/src/rank.rs:
crates/mpisim/src/transport.rs:
crates/mpisim/src/world.rs:
