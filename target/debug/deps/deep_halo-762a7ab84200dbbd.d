/root/repo/target/debug/deps/deep_halo-762a7ab84200dbbd.d: examples/deep_halo.rs Cargo.toml

/root/repo/target/debug/deps/libdeep_halo-762a7ab84200dbbd.rmeta: examples/deep_halo.rs Cargo.toml

examples/deep_halo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
