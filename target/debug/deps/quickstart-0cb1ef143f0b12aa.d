/root/repo/target/debug/deps/quickstart-0cb1ef143f0b12aa.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-0cb1ef143f0b12aa: examples/quickstart.rs

examples/quickstart.rs:
