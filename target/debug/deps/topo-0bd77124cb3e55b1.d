/root/repo/target/debug/deps/topo-0bd77124cb3e55b1.d: crates/topo/src/lib.rs crates/topo/src/cluster.rs crates/topo/src/discover.rs crates/topo/src/node.rs crates/topo/src/presets.rs crates/topo/src/summit.rs

/root/repo/target/debug/deps/libtopo-0bd77124cb3e55b1.rlib: crates/topo/src/lib.rs crates/topo/src/cluster.rs crates/topo/src/discover.rs crates/topo/src/node.rs crates/topo/src/presets.rs crates/topo/src/summit.rs

/root/repo/target/debug/deps/libtopo-0bd77124cb3e55b1.rmeta: crates/topo/src/lib.rs crates/topo/src/cluster.rs crates/topo/src/discover.rs crates/topo/src/node.rs crates/topo/src/presets.rs crates/topo/src/summit.rs

crates/topo/src/lib.rs:
crates/topo/src/cluster.rs:
crates/topo/src/discover.rs:
crates/topo/src/node.rs:
crates/topo/src/presets.rs:
crates/topo/src/summit.rs:
