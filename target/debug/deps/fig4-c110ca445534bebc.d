/root/repo/target/debug/deps/fig4-c110ca445534bebc.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/libfig4-c110ca445534bebc.rmeta: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
