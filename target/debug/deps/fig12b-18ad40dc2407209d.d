/root/repo/target/debug/deps/fig12b-18ad40dc2407209d.d: crates/bench/src/bin/fig12b.rs

/root/repo/target/debug/deps/libfig12b-18ad40dc2407209d.rmeta: crates/bench/src/bin/fig12b.rs

crates/bench/src/bin/fig12b.rs:
