/root/repo/target/debug/deps/fig3-f1f4515bc4547e80.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-f1f4515bc4547e80: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
