/root/repo/target/debug/deps/pack-8475572c3b0aa153.d: crates/bench/benches/pack.rs Cargo.toml

/root/repo/target/debug/deps/libpack-8475572c3b0aa153.rmeta: crates/bench/benches/pack.rs Cargo.toml

crates/bench/benches/pack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
