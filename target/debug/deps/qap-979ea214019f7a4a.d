/root/repo/target/debug/deps/qap-979ea214019f7a4a.d: crates/bench/benches/qap.rs Cargo.toml

/root/repo/target/debug/deps/libqap-979ea214019f7a4a.rmeta: crates/bench/benches/qap.rs Cargo.toml

crates/bench/benches/qap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
