/root/repo/target/debug/deps/flow_properties-59ceb366005cadf1.d: crates/detsim/tests/flow_properties.rs

/root/repo/target/debug/deps/flow_properties-59ceb366005cadf1: crates/detsim/tests/flow_properties.rs

crates/detsim/tests/flow_properties.rs:
