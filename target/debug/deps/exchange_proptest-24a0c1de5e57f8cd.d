/root/repo/target/debug/deps/exchange_proptest-24a0c1de5e57f8cd.d: crates/core/tests/exchange_proptest.rs Cargo.toml

/root/repo/target/debug/deps/libexchange_proptest-24a0c1de5e57f8cd.rmeta: crates/core/tests/exchange_proptest.rs Cargo.toml

crates/core/tests/exchange_proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
