/root/repo/target/debug/deps/mpisim-dc5f336a25e8d6e5.d: crates/mpisim/src/lib.rs crates/mpisim/src/config.rs crates/mpisim/src/rank.rs crates/mpisim/src/transport.rs crates/mpisim/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libmpisim-dc5f336a25e8d6e5.rmeta: crates/mpisim/src/lib.rs crates/mpisim/src/config.rs crates/mpisim/src/rank.rs crates/mpisim/src/transport.rs crates/mpisim/src/world.rs Cargo.toml

crates/mpisim/src/lib.rs:
crates/mpisim/src/config.rs:
crates/mpisim/src/rank.rs:
crates/mpisim/src/transport.rs:
crates/mpisim/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
