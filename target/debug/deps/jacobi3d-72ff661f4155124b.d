/root/repo/target/debug/deps/jacobi3d-72ff661f4155124b.d: examples/jacobi3d.rs

/root/repo/target/debug/deps/jacobi3d-72ff661f4155124b: examples/jacobi3d.rs

examples/jacobi3d.rs:
