/root/repo/target/debug/deps/fig12c-4d45a9b39c70aaa8.d: crates/bench/src/bin/fig12c.rs

/root/repo/target/debug/deps/fig12c-4d45a9b39c70aaa8: crates/bench/src/bin/fig12c.rs

crates/bench/src/bin/fig12c.rs:
