/root/repo/target/debug/deps/exchange-09474bcbe79ff902.d: crates/bench/benches/exchange.rs

/root/repo/target/debug/deps/libexchange-09474bcbe79ff902.rmeta: crates/bench/benches/exchange.rs

crates/bench/benches/exchange.rs:
