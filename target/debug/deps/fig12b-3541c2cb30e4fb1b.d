/root/repo/target/debug/deps/fig12b-3541c2cb30e4fb1b.d: crates/bench/src/bin/fig12b.rs

/root/repo/target/debug/deps/fig12b-3541c2cb30e4fb1b: crates/bench/src/bin/fig12b.rs

crates/bench/src/bin/fig12b.rs:
