/root/repo/target/debug/deps/stencil_bench-3ab2b08deea0d264.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/debug/deps/libstencil_bench-3ab2b08deea0d264.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
