/root/repo/target/debug/deps/stencil_bench-65f3cdf508de61ec.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/debug/deps/stencil_bench-65f3cdf508de61ec: crates/bench/src/lib.rs crates/bench/src/microbench.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
