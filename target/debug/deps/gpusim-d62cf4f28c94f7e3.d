/root/repo/target/debug/deps/gpusim-d62cf4f28c94f7e3.d: crates/gpusim/src/lib.rs crates/gpusim/src/buffer.rs crates/gpusim/src/config.rs crates/gpusim/src/error.rs crates/gpusim/src/machine.rs crates/gpusim/src/ops.rs Cargo.toml

/root/repo/target/debug/deps/libgpusim-d62cf4f28c94f7e3.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/buffer.rs crates/gpusim/src/config.rs crates/gpusim/src/error.rs crates/gpusim/src/machine.rs crates/gpusim/src/ops.rs Cargo.toml

crates/gpusim/src/lib.rs:
crates/gpusim/src/buffer.rs:
crates/gpusim/src/config.rs:
crates/gpusim/src/error.rs:
crates/gpusim/src/machine.rs:
crates/gpusim/src/ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
