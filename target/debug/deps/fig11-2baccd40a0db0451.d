/root/repo/target/debug/deps/fig11-2baccd40a0db0451.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-2baccd40a0db0451: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
