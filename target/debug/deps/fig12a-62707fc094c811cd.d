/root/repo/target/debug/deps/fig12a-62707fc094c811cd.d: crates/bench/src/bin/fig12a.rs Cargo.toml

/root/repo/target/debug/deps/libfig12a-62707fc094c811cd.rmeta: crates/bench/src/bin/fig12a.rs Cargo.toml

crates/bench/src/bin/fig12a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
