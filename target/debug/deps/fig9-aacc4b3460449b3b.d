/root/repo/target/debug/deps/fig9-aacc4b3460449b3b.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/libfig9-aacc4b3460449b3b.rmeta: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
