/root/repo/target/debug/deps/quickstart-505c844fbe712fce.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-505c844fbe712fce: examples/quickstart.rs

examples/quickstart.rs:
