/root/repo/target/debug/deps/fig3-d74bde391e9ae708.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-d74bde391e9ae708: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
