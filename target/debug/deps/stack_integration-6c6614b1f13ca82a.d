/root/repo/target/debug/deps/stack_integration-6c6614b1f13ca82a.d: tests/tests/stack_integration.rs

/root/repo/target/debug/deps/stack_integration-6c6614b1f13ca82a: tests/tests/stack_integration.rs

tests/tests/stack_integration.rs:
