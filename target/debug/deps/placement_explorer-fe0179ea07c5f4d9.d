/root/repo/target/debug/deps/placement_explorer-fe0179ea07c5f4d9.d: examples/placement_explorer.rs Cargo.toml

/root/repo/target/debug/deps/libplacement_explorer-fe0179ea07c5f4d9.rmeta: examples/placement_explorer.rs Cargo.toml

examples/placement_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
