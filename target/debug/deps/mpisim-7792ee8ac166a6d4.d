/root/repo/target/debug/deps/mpisim-7792ee8ac166a6d4.d: crates/mpisim/src/lib.rs crates/mpisim/src/config.rs crates/mpisim/src/rank.rs crates/mpisim/src/transport.rs crates/mpisim/src/world.rs

/root/repo/target/debug/deps/libmpisim-7792ee8ac166a6d4.rlib: crates/mpisim/src/lib.rs crates/mpisim/src/config.rs crates/mpisim/src/rank.rs crates/mpisim/src/transport.rs crates/mpisim/src/world.rs

/root/repo/target/debug/deps/libmpisim-7792ee8ac166a6d4.rmeta: crates/mpisim/src/lib.rs crates/mpisim/src/config.rs crates/mpisim/src/rank.rs crates/mpisim/src/transport.rs crates/mpisim/src/world.rs

crates/mpisim/src/lib.rs:
crates/mpisim/src/config.rs:
crates/mpisim/src/rank.rs:
crates/mpisim/src/transport.rs:
crates/mpisim/src/world.rs:
