/root/repo/target/debug/deps/ablation-f87b801e11203f32.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-f87b801e11203f32.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
