/root/repo/target/debug/deps/ablation-9571a91d91cca6b2.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-9571a91d91cca6b2: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
