/root/repo/target/debug/deps/matching-2aea394542399562.d: crates/mpisim/tests/matching.rs

/root/repo/target/debug/deps/matching-2aea394542399562: crates/mpisim/tests/matching.rs

crates/mpisim/tests/matching.rs:
