/root/repo/target/debug/deps/paper_shapes-f12f3da479c1ce82.d: tests/tests/paper_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_shapes-f12f3da479c1ce82.rmeta: tests/tests/paper_shapes.rs Cargo.toml

tests/tests/paper_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
