/root/repo/target/debug/deps/gpusim-6c413d00413d460a.d: crates/gpusim/src/lib.rs crates/gpusim/src/buffer.rs crates/gpusim/src/config.rs crates/gpusim/src/error.rs crates/gpusim/src/machine.rs crates/gpusim/src/ops.rs

/root/repo/target/debug/deps/libgpusim-6c413d00413d460a.rlib: crates/gpusim/src/lib.rs crates/gpusim/src/buffer.rs crates/gpusim/src/config.rs crates/gpusim/src/error.rs crates/gpusim/src/machine.rs crates/gpusim/src/ops.rs

/root/repo/target/debug/deps/libgpusim-6c413d00413d460a.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/buffer.rs crates/gpusim/src/config.rs crates/gpusim/src/error.rs crates/gpusim/src/machine.rs crates/gpusim/src/ops.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/buffer.rs:
crates/gpusim/src/config.rs:
crates/gpusim/src/error.rs:
crates/gpusim/src/machine.rs:
crates/gpusim/src/ops.rs:
