/root/repo/target/debug/deps/integration_tests-c5245ee01ad8f62f.d: tests/src/lib.rs

/root/repo/target/debug/deps/integration_tests-c5245ee01ad8f62f: tests/src/lib.rs

tests/src/lib.rs:
