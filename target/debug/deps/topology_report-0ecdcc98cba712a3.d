/root/repo/target/debug/deps/topology_report-0ecdcc98cba712a3.d: examples/topology_report.rs Cargo.toml

/root/repo/target/debug/deps/libtopology_report-0ecdcc98cba712a3.rmeta: examples/topology_report.rs Cargo.toml

examples/topology_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
