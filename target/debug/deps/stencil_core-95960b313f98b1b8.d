/root/repo/target/debug/deps/stencil_core-95960b313f98b1b8.d: crates/core/src/lib.rs crates/core/src/dim3.rs crates/core/src/domain.rs crates/core/src/empirical.rs crates/core/src/exchange.rs crates/core/src/local.rs crates/core/src/method.rs crates/core/src/partition.rs crates/core/src/placement.rs crates/core/src/qap.rs crates/core/src/radius.rs crates/core/src/region.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libstencil_core-95960b313f98b1b8.rlib: crates/core/src/lib.rs crates/core/src/dim3.rs crates/core/src/domain.rs crates/core/src/empirical.rs crates/core/src/exchange.rs crates/core/src/local.rs crates/core/src/method.rs crates/core/src/partition.rs crates/core/src/placement.rs crates/core/src/qap.rs crates/core/src/radius.rs crates/core/src/region.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libstencil_core-95960b313f98b1b8.rmeta: crates/core/src/lib.rs crates/core/src/dim3.rs crates/core/src/domain.rs crates/core/src/empirical.rs crates/core/src/exchange.rs crates/core/src/local.rs crates/core/src/method.rs crates/core/src/partition.rs crates/core/src/placement.rs crates/core/src/qap.rs crates/core/src/radius.rs crates/core/src/region.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/dim3.rs:
crates/core/src/domain.rs:
crates/core/src/empirical.rs:
crates/core/src/exchange.rs:
crates/core/src/local.rs:
crates/core/src/method.rs:
crates/core/src/partition.rs:
crates/core/src/placement.rs:
crates/core/src/qap.rs:
crates/core/src/radius.rs:
crates/core/src/region.rs:
crates/core/src/stats.rs:
