/root/repo/target/debug/deps/fig11-b01ece19c4ccab06.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/libfig11-b01ece19c4ccab06.rmeta: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
