/root/repo/target/debug/deps/topology_report-cb98189b68348efa.d: examples/topology_report.rs

/root/repo/target/debug/deps/topology_report-cb98189b68348efa: examples/topology_report.rs

examples/topology_report.rs:
