/root/repo/target/debug/deps/partition-c25bab84b1673d94.d: crates/bench/benches/partition.rs Cargo.toml

/root/repo/target/debug/deps/libpartition-c25bab84b1673d94.rmeta: crates/bench/benches/partition.rs Cargo.toml

crates/bench/benches/partition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
