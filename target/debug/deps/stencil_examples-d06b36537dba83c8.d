/root/repo/target/debug/deps/stencil_examples-d06b36537dba83c8.d: examples/src/lib.rs

/root/repo/target/debug/deps/libstencil_examples-d06b36537dba83c8.rmeta: examples/src/lib.rs

examples/src/lib.rs:
