/root/repo/target/debug/deps/matching-d9ec43673a9b1541.d: crates/mpisim/tests/matching.rs Cargo.toml

/root/repo/target/debug/deps/libmatching-d9ec43673a9b1541.rmeta: crates/mpisim/tests/matching.rs Cargo.toml

crates/mpisim/tests/matching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
