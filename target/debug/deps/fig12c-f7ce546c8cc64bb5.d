/root/repo/target/debug/deps/fig12c-f7ce546c8cc64bb5.d: crates/bench/src/bin/fig12c.rs

/root/repo/target/debug/deps/fig12c-f7ce546c8cc64bb5: crates/bench/src/bin/fig12c.rs

crates/bench/src/bin/fig12c.rs:
