/root/repo/target/debug/deps/fig12a-e96c6b704aad41bf.d: crates/bench/src/bin/fig12a.rs

/root/repo/target/debug/deps/libfig12a-e96c6b704aad41bf.rmeta: crates/bench/src/bin/fig12a.rs

crates/bench/src/bin/fig12a.rs:
