/root/repo/target/debug/deps/conservation-637ec01da9bd97de.d: crates/detsim/tests/conservation.rs

/root/repo/target/debug/deps/conservation-637ec01da9bd97de: crates/detsim/tests/conservation.rs

crates/detsim/tests/conservation.rs:
