/root/repo/target/debug/deps/stencil_bench-697f09b5fdecb80c.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/debug/deps/libstencil_bench-697f09b5fdecb80c.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
