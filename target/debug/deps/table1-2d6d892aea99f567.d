/root/repo/target/debug/deps/table1-2d6d892aea99f567.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-2d6d892aea99f567: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
