/root/repo/target/debug/deps/topo-940cda10e212f6d0.d: crates/topo/src/lib.rs crates/topo/src/cluster.rs crates/topo/src/discover.rs crates/topo/src/node.rs crates/topo/src/presets.rs crates/topo/src/summit.rs Cargo.toml

/root/repo/target/debug/deps/libtopo-940cda10e212f6d0.rmeta: crates/topo/src/lib.rs crates/topo/src/cluster.rs crates/topo/src/discover.rs crates/topo/src/node.rs crates/topo/src/presets.rs crates/topo/src/summit.rs Cargo.toml

crates/topo/src/lib.rs:
crates/topo/src/cluster.rs:
crates/topo/src/discover.rs:
crates/topo/src/node.rs:
crates/topo/src/presets.rs:
crates/topo/src/summit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
