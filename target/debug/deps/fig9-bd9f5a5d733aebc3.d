/root/repo/target/debug/deps/fig9-bd9f5a5d733aebc3.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-bd9f5a5d733aebc3: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
