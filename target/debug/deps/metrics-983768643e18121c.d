/root/repo/target/debug/deps/metrics-983768643e18121c.d: tests/tests/metrics.rs

/root/repo/target/debug/deps/metrics-983768643e18121c: tests/tests/metrics.rs

tests/tests/metrics.rs:
