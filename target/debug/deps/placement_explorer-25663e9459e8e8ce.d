/root/repo/target/debug/deps/placement_explorer-25663e9459e8e8ce.d: examples/placement_explorer.rs

/root/repo/target/debug/deps/placement_explorer-25663e9459e8e8ce: examples/placement_explorer.rs

examples/placement_explorer.rs:
