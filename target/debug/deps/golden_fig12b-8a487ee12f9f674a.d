/root/repo/target/debug/deps/golden_fig12b-8a487ee12f9f674a.d: crates/bench/tests/golden_fig12b.rs

/root/repo/target/debug/deps/golden_fig12b-8a487ee12f9f674a: crates/bench/tests/golden_fig12b.rs

crates/bench/tests/golden_fig12b.rs:
