/root/repo/target/debug/deps/table1-833be6dfdd14ff1a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-833be6dfdd14ff1a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
