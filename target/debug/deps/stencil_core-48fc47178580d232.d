/root/repo/target/debug/deps/stencil_core-48fc47178580d232.d: crates/core/src/lib.rs crates/core/src/dim3.rs crates/core/src/domain.rs crates/core/src/empirical.rs crates/core/src/exchange.rs crates/core/src/local.rs crates/core/src/method.rs crates/core/src/partition.rs crates/core/src/placement.rs crates/core/src/qap.rs crates/core/src/radius.rs crates/core/src/region.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libstencil_core-48fc47178580d232.rmeta: crates/core/src/lib.rs crates/core/src/dim3.rs crates/core/src/domain.rs crates/core/src/empirical.rs crates/core/src/exchange.rs crates/core/src/local.rs crates/core/src/method.rs crates/core/src/partition.rs crates/core/src/placement.rs crates/core/src/qap.rs crates/core/src/radius.rs crates/core/src/region.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/dim3.rs:
crates/core/src/domain.rs:
crates/core/src/empirical.rs:
crates/core/src/exchange.rs:
crates/core/src/local.rs:
crates/core/src/method.rs:
crates/core/src/partition.rs:
crates/core/src/placement.rs:
crates/core/src/qap.rs:
crates/core/src/radius.rs:
crates/core/src/region.rs:
crates/core/src/stats.rs:
