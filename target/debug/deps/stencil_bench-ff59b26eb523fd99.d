/root/repo/target/debug/deps/stencil_bench-ff59b26eb523fd99.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/debug/deps/libstencil_bench-ff59b26eb523fd99.rlib: crates/bench/src/lib.rs crates/bench/src/microbench.rs

/root/repo/target/debug/deps/libstencil_bench-ff59b26eb523fd99.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
