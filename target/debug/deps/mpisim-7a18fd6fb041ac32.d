/root/repo/target/debug/deps/mpisim-7a18fd6fb041ac32.d: crates/mpisim/src/lib.rs crates/mpisim/src/config.rs crates/mpisim/src/rank.rs crates/mpisim/src/transport.rs crates/mpisim/src/world.rs

/root/repo/target/debug/deps/mpisim-7a18fd6fb041ac32: crates/mpisim/src/lib.rs crates/mpisim/src/config.rs crates/mpisim/src/rank.rs crates/mpisim/src/transport.rs crates/mpisim/src/world.rs

crates/mpisim/src/lib.rs:
crates/mpisim/src/config.rs:
crates/mpisim/src/rank.rs:
crates/mpisim/src/transport.rs:
crates/mpisim/src/world.rs:
