/root/repo/target/debug/deps/simperf-5f6b7e35a4a6b7dc.d: crates/bench/src/bin/simperf.rs Cargo.toml

/root/repo/target/debug/deps/libsimperf-5f6b7e35a4a6b7dc.rmeta: crates/bench/src/bin/simperf.rs Cargo.toml

crates/bench/src/bin/simperf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
