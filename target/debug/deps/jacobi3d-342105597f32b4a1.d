/root/repo/target/debug/deps/jacobi3d-342105597f32b4a1.d: examples/jacobi3d.rs

/root/repo/target/debug/deps/jacobi3d-342105597f32b4a1: examples/jacobi3d.rs

examples/jacobi3d.rs:
