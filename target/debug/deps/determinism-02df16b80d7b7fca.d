/root/repo/target/debug/deps/determinism-02df16b80d7b7fca.d: tests/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-02df16b80d7b7fca.rmeta: tests/tests/determinism.rs Cargo.toml

tests/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
