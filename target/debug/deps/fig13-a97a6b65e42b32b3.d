/root/repo/target/debug/deps/fig13-a97a6b65e42b32b3.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-a97a6b65e42b32b3: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
