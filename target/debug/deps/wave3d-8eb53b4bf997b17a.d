/root/repo/target/debug/deps/wave3d-8eb53b4bf997b17a.d: examples/wave3d.rs Cargo.toml

/root/repo/target/debug/deps/libwave3d-8eb53b4bf997b17a.rmeta: examples/wave3d.rs Cargo.toml

examples/wave3d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
