/root/repo/target/debug/deps/fig13-5f6b61d28f7d4927.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-5f6b61d28f7d4927: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
