/root/repo/target/debug/deps/exchange_proptest-f3b200cc15575637.d: crates/core/tests/exchange_proptest.rs

/root/repo/target/debug/deps/exchange_proptest-f3b200cc15575637: crates/core/tests/exchange_proptest.rs

crates/core/tests/exchange_proptest.rs:
