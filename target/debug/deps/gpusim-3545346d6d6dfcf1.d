/root/repo/target/debug/deps/gpusim-3545346d6d6dfcf1.d: crates/gpusim/src/lib.rs crates/gpusim/src/buffer.rs crates/gpusim/src/config.rs crates/gpusim/src/error.rs crates/gpusim/src/machine.rs crates/gpusim/src/ops.rs

/root/repo/target/debug/deps/libgpusim-3545346d6d6dfcf1.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/buffer.rs crates/gpusim/src/config.rs crates/gpusim/src/error.rs crates/gpusim/src/machine.rs crates/gpusim/src/ops.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/buffer.rs:
crates/gpusim/src/config.rs:
crates/gpusim/src/error.rs:
crates/gpusim/src/machine.rs:
crates/gpusim/src/ops.rs:
