/root/repo/target/debug/deps/placement_explorer-b2b7a4f78d609f3a.d: examples/placement_explorer.rs

/root/repo/target/debug/deps/placement_explorer-b2b7a4f78d609f3a: examples/placement_explorer.rs

examples/placement_explorer.rs:
