/root/repo/target/debug/deps/exchange_correctness-f0b685ecc9923698.d: crates/core/tests/exchange_correctness.rs

/root/repo/target/debug/deps/exchange_correctness-f0b685ecc9923698: crates/core/tests/exchange_correctness.rs

crates/core/tests/exchange_correctness.rs:
