/root/repo/target/debug/deps/jacobi3d-808bc3f08ea5ca9a.d: examples/jacobi3d.rs Cargo.toml

/root/repo/target/debug/deps/libjacobi3d-808bc3f08ea5ca9a.rmeta: examples/jacobi3d.rs Cargo.toml

examples/jacobi3d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
