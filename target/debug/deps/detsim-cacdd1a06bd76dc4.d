/root/repo/target/debug/deps/detsim-cacdd1a06bd76dc4.d: crates/detsim/src/lib.rs crates/detsim/src/fifo.rs crates/detsim/src/flow.rs crates/detsim/src/kernel.rs crates/detsim/src/metrics.rs crates/detsim/src/park.rs crates/detsim/src/sched.rs crates/detsim/src/time.rs crates/detsim/src/trace.rs

/root/repo/target/debug/deps/libdetsim-cacdd1a06bd76dc4.rmeta: crates/detsim/src/lib.rs crates/detsim/src/fifo.rs crates/detsim/src/flow.rs crates/detsim/src/kernel.rs crates/detsim/src/metrics.rs crates/detsim/src/park.rs crates/detsim/src/sched.rs crates/detsim/src/time.rs crates/detsim/src/trace.rs

crates/detsim/src/lib.rs:
crates/detsim/src/fifo.rs:
crates/detsim/src/flow.rs:
crates/detsim/src/kernel.rs:
crates/detsim/src/metrics.rs:
crates/detsim/src/park.rs:
crates/detsim/src/sched.rs:
crates/detsim/src/time.rs:
crates/detsim/src/trace.rs:
