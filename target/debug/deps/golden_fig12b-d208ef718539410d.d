/root/repo/target/debug/deps/golden_fig12b-d208ef718539410d.d: crates/bench/tests/golden_fig12b.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_fig12b-d208ef718539410d.rmeta: crates/bench/tests/golden_fig12b.rs Cargo.toml

crates/bench/tests/golden_fig12b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
