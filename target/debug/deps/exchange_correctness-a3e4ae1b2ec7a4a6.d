/root/repo/target/debug/deps/exchange_correctness-a3e4ae1b2ec7a4a6.d: crates/core/tests/exchange_correctness.rs Cargo.toml

/root/repo/target/debug/deps/libexchange_correctness-a3e4ae1b2ec7a4a6.rmeta: crates/core/tests/exchange_correctness.rs Cargo.toml

crates/core/tests/exchange_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
