/root/repo/target/debug/deps/integration_tests-2dcd3954f4ca3100.d: tests/src/lib.rs

/root/repo/target/debug/deps/libintegration_tests-2dcd3954f4ca3100.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libintegration_tests-2dcd3954f4ca3100.rmeta: tests/src/lib.rs

tests/src/lib.rs:
