/root/repo/target/debug/deps/deep_halo-c30d31d4a69461b3.d: examples/deep_halo.rs Cargo.toml

/root/repo/target/debug/deps/libdeep_halo-c30d31d4a69461b3.rmeta: examples/deep_halo.rs Cargo.toml

examples/deep_halo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
