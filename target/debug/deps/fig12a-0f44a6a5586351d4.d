/root/repo/target/debug/deps/fig12a-0f44a6a5586351d4.d: crates/bench/src/bin/fig12a.rs Cargo.toml

/root/repo/target/debug/deps/libfig12a-0f44a6a5586351d4.rmeta: crates/bench/src/bin/fig12a.rs Cargo.toml

crates/bench/src/bin/fig12a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
