/root/repo/target/debug/deps/metrics-a578acaa2b3fcdda.d: tests/tests/metrics.rs Cargo.toml

/root/repo/target/debug/deps/libmetrics-a578acaa2b3fcdda.rmeta: tests/tests/metrics.rs Cargo.toml

tests/tests/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
