/root/repo/target/debug/deps/table1-b851e5cdc5104373.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-b851e5cdc5104373.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
