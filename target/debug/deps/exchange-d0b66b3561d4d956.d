/root/repo/target/debug/deps/exchange-d0b66b3561d4d956.d: crates/bench/benches/exchange.rs Cargo.toml

/root/repo/target/debug/deps/libexchange-d0b66b3561d4d956.rmeta: crates/bench/benches/exchange.rs Cargo.toml

crates/bench/benches/exchange.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
