/root/repo/target/debug/deps/stencil_examples-5eef8e598de39b50.d: examples/src/lib.rs

/root/repo/target/debug/deps/libstencil_examples-5eef8e598de39b50.rlib: examples/src/lib.rs

/root/repo/target/debug/deps/libstencil_examples-5eef8e598de39b50.rmeta: examples/src/lib.rs

examples/src/lib.rs:
