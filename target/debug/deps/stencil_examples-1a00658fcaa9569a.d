/root/repo/target/debug/deps/stencil_examples-1a00658fcaa9569a.d: examples/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstencil_examples-1a00658fcaa9569a.rmeta: examples/src/lib.rs Cargo.toml

examples/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
