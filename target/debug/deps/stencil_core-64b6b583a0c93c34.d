/root/repo/target/debug/deps/stencil_core-64b6b583a0c93c34.d: crates/core/src/lib.rs crates/core/src/dim3.rs crates/core/src/domain.rs crates/core/src/empirical.rs crates/core/src/exchange.rs crates/core/src/local.rs crates/core/src/method.rs crates/core/src/partition.rs crates/core/src/placement.rs crates/core/src/qap.rs crates/core/src/radius.rs crates/core/src/region.rs crates/core/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libstencil_core-64b6b583a0c93c34.rmeta: crates/core/src/lib.rs crates/core/src/dim3.rs crates/core/src/domain.rs crates/core/src/empirical.rs crates/core/src/exchange.rs crates/core/src/local.rs crates/core/src/method.rs crates/core/src/partition.rs crates/core/src/placement.rs crates/core/src/qap.rs crates/core/src/radius.rs crates/core/src/region.rs crates/core/src/stats.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/dim3.rs:
crates/core/src/domain.rs:
crates/core/src/empirical.rs:
crates/core/src/exchange.rs:
crates/core/src/local.rs:
crates/core/src/method.rs:
crates/core/src/partition.rs:
crates/core/src/placement.rs:
crates/core/src/qap.rs:
crates/core/src/radius.rs:
crates/core/src/region.rs:
crates/core/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
