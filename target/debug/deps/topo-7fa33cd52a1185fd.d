/root/repo/target/debug/deps/topo-7fa33cd52a1185fd.d: crates/topo/src/lib.rs crates/topo/src/cluster.rs crates/topo/src/discover.rs crates/topo/src/node.rs crates/topo/src/presets.rs crates/topo/src/summit.rs Cargo.toml

/root/repo/target/debug/deps/libtopo-7fa33cd52a1185fd.rmeta: crates/topo/src/lib.rs crates/topo/src/cluster.rs crates/topo/src/discover.rs crates/topo/src/node.rs crates/topo/src/presets.rs crates/topo/src/summit.rs Cargo.toml

crates/topo/src/lib.rs:
crates/topo/src/cluster.rs:
crates/topo/src/discover.rs:
crates/topo/src/node.rs:
crates/topo/src/presets.rs:
crates/topo/src/summit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
