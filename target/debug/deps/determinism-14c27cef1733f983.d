/root/repo/target/debug/deps/determinism-14c27cef1733f983.d: tests/tests/determinism.rs

/root/repo/target/debug/deps/determinism-14c27cef1733f983: tests/tests/determinism.rs

tests/tests/determinism.rs:
