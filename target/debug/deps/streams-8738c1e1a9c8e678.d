/root/repo/target/debug/deps/streams-8738c1e1a9c8e678.d: crates/gpusim/tests/streams.rs

/root/repo/target/debug/deps/streams-8738c1e1a9c8e678: crates/gpusim/tests/streams.rs

crates/gpusim/tests/streams.rs:
