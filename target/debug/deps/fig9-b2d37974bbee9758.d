/root/repo/target/debug/deps/fig9-b2d37974bbee9758.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-b2d37974bbee9758: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
