/root/repo/target/debug/deps/detsim-46ec9a5923a6de8d.d: crates/detsim/src/lib.rs crates/detsim/src/fifo.rs crates/detsim/src/flow.rs crates/detsim/src/kernel.rs crates/detsim/src/metrics.rs crates/detsim/src/park.rs crates/detsim/src/sched.rs crates/detsim/src/time.rs crates/detsim/src/trace.rs

/root/repo/target/debug/deps/detsim-46ec9a5923a6de8d: crates/detsim/src/lib.rs crates/detsim/src/fifo.rs crates/detsim/src/flow.rs crates/detsim/src/kernel.rs crates/detsim/src/metrics.rs crates/detsim/src/park.rs crates/detsim/src/sched.rs crates/detsim/src/time.rs crates/detsim/src/trace.rs

crates/detsim/src/lib.rs:
crates/detsim/src/fifo.rs:
crates/detsim/src/flow.rs:
crates/detsim/src/kernel.rs:
crates/detsim/src/metrics.rs:
crates/detsim/src/park.rs:
crates/detsim/src/sched.rs:
crates/detsim/src/time.rs:
crates/detsim/src/trace.rs:
