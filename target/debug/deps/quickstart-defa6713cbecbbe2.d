/root/repo/target/debug/deps/quickstart-defa6713cbecbbe2.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-defa6713cbecbbe2.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
