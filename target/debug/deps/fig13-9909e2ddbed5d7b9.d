/root/repo/target/debug/deps/fig13-9909e2ddbed5d7b9.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/libfig13-9909e2ddbed5d7b9.rmeta: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
