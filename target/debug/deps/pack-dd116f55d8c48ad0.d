/root/repo/target/debug/deps/pack-dd116f55d8c48ad0.d: crates/bench/benches/pack.rs

/root/repo/target/debug/deps/libpack-dd116f55d8c48ad0.rmeta: crates/bench/benches/pack.rs

crates/bench/benches/pack.rs:
