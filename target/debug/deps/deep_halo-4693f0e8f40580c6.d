/root/repo/target/debug/deps/deep_halo-4693f0e8f40580c6.d: examples/deep_halo.rs

/root/repo/target/debug/deps/deep_halo-4693f0e8f40580c6: examples/deep_halo.rs

examples/deep_halo.rs:
