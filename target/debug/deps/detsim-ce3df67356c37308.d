/root/repo/target/debug/deps/detsim-ce3df67356c37308.d: crates/detsim/src/lib.rs crates/detsim/src/fifo.rs crates/detsim/src/flow.rs crates/detsim/src/kernel.rs crates/detsim/src/metrics.rs crates/detsim/src/park.rs crates/detsim/src/sched.rs crates/detsim/src/time.rs crates/detsim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libdetsim-ce3df67356c37308.rmeta: crates/detsim/src/lib.rs crates/detsim/src/fifo.rs crates/detsim/src/flow.rs crates/detsim/src/kernel.rs crates/detsim/src/metrics.rs crates/detsim/src/park.rs crates/detsim/src/sched.rs crates/detsim/src/time.rs crates/detsim/src/trace.rs Cargo.toml

crates/detsim/src/lib.rs:
crates/detsim/src/fifo.rs:
crates/detsim/src/flow.rs:
crates/detsim/src/kernel.rs:
crates/detsim/src/metrics.rs:
crates/detsim/src/park.rs:
crates/detsim/src/sched.rs:
crates/detsim/src/time.rs:
crates/detsim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
