/root/repo/target/debug/deps/fig12b-9b5ee0e33fc2370b.d: crates/bench/src/bin/fig12b.rs Cargo.toml

/root/repo/target/debug/deps/libfig12b-9b5ee0e33fc2370b.rmeta: crates/bench/src/bin/fig12b.rs Cargo.toml

crates/bench/src/bin/fig12b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
