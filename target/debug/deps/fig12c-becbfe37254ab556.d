/root/repo/target/debug/deps/fig12c-becbfe37254ab556.d: crates/bench/src/bin/fig12c.rs Cargo.toml

/root/repo/target/debug/deps/libfig12c-becbfe37254ab556.rmeta: crates/bench/src/bin/fig12c.rs Cargo.toml

crates/bench/src/bin/fig12c.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
