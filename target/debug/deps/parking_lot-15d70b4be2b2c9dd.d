/root/repo/target/debug/deps/parking_lot-15d70b4be2b2c9dd.d: crates/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-15d70b4be2b2c9dd.rmeta: crates/parking_lot/src/lib.rs

crates/parking_lot/src/lib.rs:
