/root/repo/target/debug/deps/partition-382330e119d650b9.d: crates/bench/benches/partition.rs

/root/repo/target/debug/deps/libpartition-382330e119d650b9.rmeta: crates/bench/benches/partition.rs

crates/bench/benches/partition.rs:
