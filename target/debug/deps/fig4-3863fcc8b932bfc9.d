/root/repo/target/debug/deps/fig4-3863fcc8b932bfc9.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-3863fcc8b932bfc9: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
