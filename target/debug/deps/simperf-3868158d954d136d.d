/root/repo/target/debug/deps/simperf-3868158d954d136d.d: crates/bench/src/bin/simperf.rs Cargo.toml

/root/repo/target/debug/deps/libsimperf-3868158d954d136d.rmeta: crates/bench/src/bin/simperf.rs Cargo.toml

crates/bench/src/bin/simperf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
