/root/repo/target/debug/deps/fig4-aafbfa50ca9ec713.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-aafbfa50ca9ec713: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
