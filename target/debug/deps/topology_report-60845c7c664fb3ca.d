/root/repo/target/debug/deps/topology_report-60845c7c664fb3ca.d: examples/topology_report.rs

/root/repo/target/debug/deps/topology_report-60845c7c664fb3ca: examples/topology_report.rs

examples/topology_report.rs:
