/root/repo/target/debug/deps/topo-6d0e2a45fab6ca6e.d: crates/topo/src/lib.rs crates/topo/src/cluster.rs crates/topo/src/discover.rs crates/topo/src/node.rs crates/topo/src/presets.rs crates/topo/src/summit.rs

/root/repo/target/debug/deps/libtopo-6d0e2a45fab6ca6e.rmeta: crates/topo/src/lib.rs crates/topo/src/cluster.rs crates/topo/src/discover.rs crates/topo/src/node.rs crates/topo/src/presets.rs crates/topo/src/summit.rs

crates/topo/src/lib.rs:
crates/topo/src/cluster.rs:
crates/topo/src/discover.rs:
crates/topo/src/node.rs:
crates/topo/src/presets.rs:
crates/topo/src/summit.rs:
