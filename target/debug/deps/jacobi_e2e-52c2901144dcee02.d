/root/repo/target/debug/deps/jacobi_e2e-52c2901144dcee02.d: tests/tests/jacobi_e2e.rs

/root/repo/target/debug/deps/jacobi_e2e-52c2901144dcee02: tests/tests/jacobi_e2e.rs

tests/tests/jacobi_e2e.rs:
