/root/repo/target/debug/deps/stencil_examples-314a4bde72f152d5.d: examples/src/lib.rs

/root/repo/target/debug/deps/stencil_examples-314a4bde72f152d5: examples/src/lib.rs

examples/src/lib.rs:
