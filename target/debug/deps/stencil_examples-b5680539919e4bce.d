/root/repo/target/debug/deps/stencil_examples-b5680539919e4bce.d: examples/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstencil_examples-b5680539919e4bce.rmeta: examples/src/lib.rs Cargo.toml

examples/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
