/root/repo/target/debug/deps/fig11-33ce55e95339e6b5.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-33ce55e95339e6b5: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
