/root/repo/target/debug/deps/gpusim-baf4c0e3156baae5.d: crates/gpusim/src/lib.rs crates/gpusim/src/buffer.rs crates/gpusim/src/config.rs crates/gpusim/src/error.rs crates/gpusim/src/machine.rs crates/gpusim/src/ops.rs

/root/repo/target/debug/deps/gpusim-baf4c0e3156baae5: crates/gpusim/src/lib.rs crates/gpusim/src/buffer.rs crates/gpusim/src/config.rs crates/gpusim/src/error.rs crates/gpusim/src/machine.rs crates/gpusim/src/ops.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/buffer.rs:
crates/gpusim/src/config.rs:
crates/gpusim/src/error.rs:
crates/gpusim/src/machine.rs:
crates/gpusim/src/ops.rs:
