/root/repo/target/debug/deps/simperf-5fae12bbffda973b.d: crates/bench/src/bin/simperf.rs

/root/repo/target/debug/deps/simperf-5fae12bbffda973b: crates/bench/src/bin/simperf.rs

crates/bench/src/bin/simperf.rs:
