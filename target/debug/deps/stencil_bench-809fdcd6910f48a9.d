/root/repo/target/debug/deps/stencil_bench-809fdcd6910f48a9.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs Cargo.toml

/root/repo/target/debug/deps/libstencil_bench-809fdcd6910f48a9.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
