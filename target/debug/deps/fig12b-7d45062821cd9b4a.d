/root/repo/target/debug/deps/fig12b-7d45062821cd9b4a.d: crates/bench/src/bin/fig12b.rs

/root/repo/target/debug/deps/fig12b-7d45062821cd9b4a: crates/bench/src/bin/fig12b.rs

crates/bench/src/bin/fig12b.rs:
