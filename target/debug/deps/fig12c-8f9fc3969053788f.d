/root/repo/target/debug/deps/fig12c-8f9fc3969053788f.d: crates/bench/src/bin/fig12c.rs

/root/repo/target/debug/deps/libfig12c-8f9fc3969053788f.rmeta: crates/bench/src/bin/fig12c.rs

crates/bench/src/bin/fig12c.rs:
