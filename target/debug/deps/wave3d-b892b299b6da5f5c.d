/root/repo/target/debug/deps/wave3d-b892b299b6da5f5c.d: examples/wave3d.rs

/root/repo/target/debug/deps/wave3d-b892b299b6da5f5c: examples/wave3d.rs

examples/wave3d.rs:
