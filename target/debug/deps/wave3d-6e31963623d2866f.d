/root/repo/target/debug/deps/wave3d-6e31963623d2866f.d: examples/wave3d.rs Cargo.toml

/root/repo/target/debug/deps/libwave3d-6e31963623d2866f.rmeta: examples/wave3d.rs Cargo.toml

examples/wave3d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
