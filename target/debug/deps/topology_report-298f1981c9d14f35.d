/root/repo/target/debug/deps/topology_report-298f1981c9d14f35.d: examples/topology_report.rs Cargo.toml

/root/repo/target/debug/deps/libtopology_report-298f1981c9d14f35.rmeta: examples/topology_report.rs Cargo.toml

examples/topology_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
