/root/repo/target/debug/deps/deep_halo-9aef1e7f0698737a.d: examples/deep_halo.rs

/root/repo/target/debug/deps/deep_halo-9aef1e7f0698737a: examples/deep_halo.rs

examples/deep_halo.rs:
