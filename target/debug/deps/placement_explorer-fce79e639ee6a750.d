/root/repo/target/debug/deps/placement_explorer-fce79e639ee6a750.d: examples/placement_explorer.rs Cargo.toml

/root/repo/target/debug/deps/libplacement_explorer-fce79e639ee6a750.rmeta: examples/placement_explorer.rs Cargo.toml

examples/placement_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
