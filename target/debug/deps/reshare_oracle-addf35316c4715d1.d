/root/repo/target/debug/deps/reshare_oracle-addf35316c4715d1.d: crates/detsim/tests/reshare_oracle.rs

/root/repo/target/debug/deps/reshare_oracle-addf35316c4715d1: crates/detsim/tests/reshare_oracle.rs

crates/detsim/tests/reshare_oracle.rs:
