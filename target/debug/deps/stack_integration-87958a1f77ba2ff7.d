/root/repo/target/debug/deps/stack_integration-87958a1f77ba2ff7.d: tests/tests/stack_integration.rs Cargo.toml

/root/repo/target/debug/deps/libstack_integration-87958a1f77ba2ff7.rmeta: tests/tests/stack_integration.rs Cargo.toml

tests/tests/stack_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
