/root/repo/target/debug/deps/jacobi3d-d48a71bc64a5631c.d: examples/jacobi3d.rs Cargo.toml

/root/repo/target/debug/deps/libjacobi3d-d48a71bc64a5631c.rmeta: examples/jacobi3d.rs Cargo.toml

examples/jacobi3d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
