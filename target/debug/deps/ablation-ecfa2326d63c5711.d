/root/repo/target/debug/deps/ablation-ecfa2326d63c5711.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-ecfa2326d63c5711.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
