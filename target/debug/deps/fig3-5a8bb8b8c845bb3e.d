/root/repo/target/debug/deps/fig3-5a8bb8b8c845bb3e.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/libfig3-5a8bb8b8c845bb3e.rmeta: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
