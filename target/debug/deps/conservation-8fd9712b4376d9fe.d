/root/repo/target/debug/deps/conservation-8fd9712b4376d9fe.d: crates/detsim/tests/conservation.rs Cargo.toml

/root/repo/target/debug/deps/libconservation-8fd9712b4376d9fe.rmeta: crates/detsim/tests/conservation.rs Cargo.toml

crates/detsim/tests/conservation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
