/root/repo/target/debug/deps/integration_tests-93c90af673e8cdd3.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_tests-93c90af673e8cdd3.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
