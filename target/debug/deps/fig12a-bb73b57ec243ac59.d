/root/repo/target/debug/deps/fig12a-bb73b57ec243ac59.d: crates/bench/src/bin/fig12a.rs

/root/repo/target/debug/deps/fig12a-bb73b57ec243ac59: crates/bench/src/bin/fig12a.rs

crates/bench/src/bin/fig12a.rs:
