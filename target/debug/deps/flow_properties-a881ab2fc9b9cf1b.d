/root/repo/target/debug/deps/flow_properties-a881ab2fc9b9cf1b.d: crates/detsim/tests/flow_properties.rs Cargo.toml

/root/repo/target/debug/deps/libflow_properties-a881ab2fc9b9cf1b.rmeta: crates/detsim/tests/flow_properties.rs Cargo.toml

crates/detsim/tests/flow_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
