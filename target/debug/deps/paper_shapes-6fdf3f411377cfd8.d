/root/repo/target/debug/deps/paper_shapes-6fdf3f411377cfd8.d: tests/tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-6fdf3f411377cfd8: tests/tests/paper_shapes.rs

tests/tests/paper_shapes.rs:
