/root/repo/target/debug/deps/wave3d-d6142acb835b2792.d: examples/wave3d.rs

/root/repo/target/debug/deps/wave3d-d6142acb835b2792: examples/wave3d.rs

examples/wave3d.rs:
