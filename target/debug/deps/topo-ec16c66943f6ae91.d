/root/repo/target/debug/deps/topo-ec16c66943f6ae91.d: crates/topo/src/lib.rs crates/topo/src/cluster.rs crates/topo/src/discover.rs crates/topo/src/node.rs crates/topo/src/presets.rs crates/topo/src/summit.rs

/root/repo/target/debug/deps/topo-ec16c66943f6ae91: crates/topo/src/lib.rs crates/topo/src/cluster.rs crates/topo/src/discover.rs crates/topo/src/node.rs crates/topo/src/presets.rs crates/topo/src/summit.rs

crates/topo/src/lib.rs:
crates/topo/src/cluster.rs:
crates/topo/src/discover.rs:
crates/topo/src/node.rs:
crates/topo/src/presets.rs:
crates/topo/src/summit.rs:
