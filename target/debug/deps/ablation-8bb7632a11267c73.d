/root/repo/target/debug/deps/ablation-8bb7632a11267c73.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-8bb7632a11267c73: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
