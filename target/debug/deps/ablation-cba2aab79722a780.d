/root/repo/target/debug/deps/ablation-cba2aab79722a780.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-cba2aab79722a780.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
