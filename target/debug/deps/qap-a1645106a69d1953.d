/root/repo/target/debug/deps/qap-a1645106a69d1953.d: crates/bench/benches/qap.rs

/root/repo/target/debug/deps/libqap-a1645106a69d1953.rmeta: crates/bench/benches/qap.rs

crates/bench/benches/qap.rs:
