/root/repo/target/debug/deps/fig12a-d1c4da54216362f1.d: crates/bench/src/bin/fig12a.rs

/root/repo/target/debug/deps/fig12a-d1c4da54216362f1: crates/bench/src/bin/fig12a.rs

crates/bench/src/bin/fig12a.rs:
