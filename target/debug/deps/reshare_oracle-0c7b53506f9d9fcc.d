/root/repo/target/debug/deps/reshare_oracle-0c7b53506f9d9fcc.d: crates/detsim/tests/reshare_oracle.rs Cargo.toml

/root/repo/target/debug/deps/libreshare_oracle-0c7b53506f9d9fcc.rmeta: crates/detsim/tests/reshare_oracle.rs Cargo.toml

crates/detsim/tests/reshare_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
