/root/repo/target/debug/deps/fig12c-feb591d9d9ab9281.d: crates/bench/src/bin/fig12c.rs Cargo.toml

/root/repo/target/debug/deps/libfig12c-feb591d9d9ab9281.rmeta: crates/bench/src/bin/fig12c.rs Cargo.toml

crates/bench/src/bin/fig12c.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
