/root/repo/target/debug/deps/jacobi_e2e-619c3df9f2f016e8.d: tests/tests/jacobi_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libjacobi_e2e-619c3df9f2f016e8.rmeta: tests/tests/jacobi_e2e.rs Cargo.toml

tests/tests/jacobi_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
