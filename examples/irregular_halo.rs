//! Irregular sparse exchange over persistent channels — the hook for the
//! second workload family (ROADMAP item 2): graph/SpMV-style neighbor
//! lists instead of a 3D grid.
//!
//! Each rank owns a contiguous strip of "graph rows" and exchanges boundary
//! values with an *irregular* neighbor set (a deterministic expander-style
//! pattern: ring hops 1 and 2, plus a long-range stride), so neighbor
//! counts and message sizes differ per rank — exactly the shape Lockhart et
//! al. characterize. The neighbor lists are fixed across iterations, which
//! is the sweet spot for persistent channels: match once at setup
//! (`send_init`/`recv_init`), then pay only the cheap `start` per sweep.
//!
//! Runs the same sweep over plain nonblocking `isend`/`irecv` and over
//! persistent channels, verifies delivered values agree element-for-element,
//! and reports the per-sweep virtual-time difference (docs/TRANSPORTS.md).
//!
//! ```text
//! cargo run --release -p stencil-examples --bin irregular_halo
//! ```

use std::sync::Arc;

use mpisim::{run_world, RankCtx, WorldConfig};
use parking_lot::Mutex;
use topo::summit::summit_cluster;

const NODES: usize = 2;
const RPN: usize = 6;
const SWEEPS: usize = 8;
/// Base f64 values per boundary block; scaled per neighbor below so
/// message sizes are deliberately non-uniform.
const BLOCK: u64 = 64;

/// The irregular neighbor set of `rank`: ring±1, ring±2, and a long-range
/// stride partner. Deduplicated, self excluded; order is deterministic.
fn neighbors(rank: usize, size: usize) -> Vec<usize> {
    let stride = size / 3 + 1;
    let mut out = Vec::new();
    for d in [1, size - 1, 2, size - 2, stride, size - stride] {
        let p = (rank + d) % size;
        if p != rank && !out.contains(&p) {
            out.push(p);
        }
    }
    out
}

/// Bytes rank `a` sends to rank `b`: proportional to how "close" they are
/// on the ring, so the pattern is irregular in size as well as shape.
fn msg_bytes(a: usize, b: usize, size: usize) -> u64 {
    let d = (b + size - a) % size;
    let hops = d.min(size - d) as u64;
    BLOCK * 8 * (1 + hops % 5)
}

/// Value rank `a` contributes to rank `b` at sweep `s`, element `i`.
fn value(a: usize, b: usize, s: usize, i: u64) -> f64 {
    (a * 1000 + b) as f64 + s as f64 * 0.5 + i as f64 * 1e-6
}

fn sweep_loop(ctx: &RankCtx, persistent: bool) -> (f64, Vec<f64>) {
    let m = ctx.machine();
    let me = ctx.rank();
    let n = ctx.size();
    let nbrs = neighbors(me, n);
    // One send and one recv block per neighbor, packed back to back.
    let sbytes: Vec<u64> = nbrs.iter().map(|&p| msg_bytes(me, p, n)).collect();
    let rbytes: Vec<u64> = nbrs.iter().map(|&p| msg_bytes(p, me, n)).collect();
    let sbuf: Vec<_> = sbytes
        .iter()
        .map(|&b| m.alloc_host_untimed(ctx.node(), 0, b))
        .collect();
    let rbuf: Vec<_> = rbytes
        .iter()
        .map(|&b| m.alloc_host_untimed(ctx.node(), 0, b))
        .collect();
    let chans = persistent.then(|| {
        let s: Vec<_> = nbrs
            .iter()
            .enumerate()
            .map(|(j, &p)| ctx.send_init(&sbuf[j], 0, sbytes[j], p, 5))
            .collect();
        let r: Vec<_> = nbrs
            .iter()
            .enumerate()
            .map(|(j, &p)| ctx.recv_init(&rbuf[j], 0, rbytes[j], p, 5))
            .collect();
        (s, r)
    });
    ctx.barrier();
    let t0 = ctx.wtime();
    let mut checksum = Vec::new();
    for s in 0..SWEEPS {
        for (j, &p) in nbrs.iter().enumerate() {
            let vals: Vec<u8> = (0..sbytes[j] / 8)
                .flat_map(|i| value(me, p, s, i).to_le_bytes())
                .collect();
            sbuf[j].write(0, &vals);
        }
        if let Some((sch, rch)) = &chans {
            let rr: Vec<_> = rch.iter().map(|c| ctx.start(c)).collect();
            let sr: Vec<_> = sch.iter().map(|c| ctx.start(c)).collect();
            for r in rr.iter().chain(sr.iter()) {
                ctx.wait(&r.all);
            }
        } else {
            let rr: Vec<_> = nbrs
                .iter()
                .enumerate()
                .map(|(j, &p)| ctx.irecv(&rbuf[j], 0, rbytes[j], p, 5))
                .collect();
            let sr: Vec<_> = nbrs
                .iter()
                .enumerate()
                .map(|(j, &p)| ctx.isend(&sbuf[j], 0, sbytes[j], p, 5))
                .collect();
            for r in rr.iter().chain(sr.iter()) {
                ctx.wait(r);
            }
        }
        // Fold received values so both paths can be compared exactly.
        for (j, &p) in nbrs.iter().enumerate() {
            let mut acc = 0.0;
            let mut raw = vec![0u8; rbytes[j] as usize];
            rbuf[j].read(0, &mut raw);
            for (i, w) in raw.chunks_exact(8).enumerate() {
                let got = f64::from_le_bytes(w.try_into().unwrap());
                assert_eq!(got, value(p, me, s, i as u64), "corrupt element");
                acc += got;
            }
            checksum.push(acc);
        }
        ctx.barrier();
    }
    (ctx.wtime() - t0, checksum)
}

fn run(persistent: bool) -> (f64, Vec<Vec<f64>>) {
    let out: Arc<Mutex<(f64, Vec<Vec<f64>>)>> = Arc::new(Mutex::new((0.0, Vec::new())));
    let o = Arc::clone(&out);
    run_world(
        WorldConfig::new(summit_cluster(NODES), RPN).mpi_persistent(true),
        move |ctx| {
            let (dt, sums) = sweep_loop(ctx, persistent);
            let mut g = o.lock();
            if ctx.rank() == 0 {
                g.0 = dt;
            }
            g.1.push(sums);
        },
    );
    let mut g = out.lock().clone();
    g.1.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (g.0, g.1)
}

fn main() {
    let size = NODES * RPN;
    let degrees: Vec<usize> = (0..size).map(|r| neighbors(r, size).len()).collect();
    println!("irregular_halo: {size} ranks, per-rank neighbor degrees {degrees:?}");

    let (t_nb, sums_nb) = run(false);
    let (t_p, sums_p) = run(true);
    assert_eq!(
        sums_nb, sums_p,
        "persistent sweep must deliver identical values"
    );
    println!("  nonblocking: {:8.3} us / {SWEEPS} sweeps", t_nb * 1e6);
    println!("  persistent:  {:8.3} us / {SWEEPS} sweeps", t_p * 1e6);
    println!(
        "  per-sweep saving: {:.3} us ({:.1}%)",
        (t_nb - t_p) * 1e6 / SWEEPS as f64,
        (1.0 - t_p / t_nb) * 100.0
    );
    assert!(
        t_p < t_nb,
        "persistent channels should win on a fixed graph"
    );
    println!(
        "verified: all {} sweeps element-exact on both paths",
        SWEEPS
    );
}
