//! Shared helpers for the example applications: host-side stencil compute
//! kernels (run as simulated-GPU work closures) and serial references for
//! verification.

#![warn(missing_docs)]

use gpusim::Work;
use stencil_core::LocalDomain;

/// Read an f32 from a raw local array.
#[inline]
fn get(arr: &[u8], dims: [u64; 3], x: u64, y: u64, z: u64) -> f32 {
    let i = (((z * dims[1] + y) * dims[0] + x) * 4) as usize;
    f32::from_le_bytes([arr[i], arr[i + 1], arr[i + 2], arr[i + 3]])
}

/// Write an f32 into a raw local array.
#[inline]
fn put(arr: &mut [u8], dims: [u64; 3], x: u64, y: u64, z: u64, v: f32) {
    let i = (((z * dims[1] + y) * dims[0] + x) * 4) as usize;
    arr[i..i + 4].copy_from_slice(&v.to_le_bytes());
}

/// Bytes of memory traffic a 7-point interior update touches (for the
/// simulated kernel's cost model): 8 reads/writes per cell.
pub fn jacobi_traffic(local: &LocalDomain) -> u64 {
    local.interior.extent.iter().product::<u64>() * 8 * 4
}

/// Build the simulated-kernel work closure for one 7-point Jacobi step on a
/// subdomain: `dst = (1-6k)·src + k·(sum of 6 face neighbors)`, over the
/// interior, reading halos exchanged beforehand. Radius must be ≥ 1.
pub fn jacobi_step_work(local: &LocalDomain, q_src: usize, q_dst: usize, k: f32) -> Work {
    let src = local.array(q_src).clone();
    let dst = local.array(q_dst).clone();
    let dims = local.array_dims();
    let off = local.radius().neg();
    let ext = local.interior.extent;
    Box::new(move || {
        if !src.has_data() {
            return;
        }
        src.with_data(|s| {
            dst.with_data(|d| {
                for z in 0..ext[2] {
                    for y in 0..ext[1] {
                        for x in 0..ext[0] {
                            let (ax, ay, az) = (x + off[0], y + off[1], z + off[2]);
                            let c = get(s, dims, ax, ay, az);
                            let n = get(s, dims, ax - 1, ay, az)
                                + get(s, dims, ax + 1, ay, az)
                                + get(s, dims, ax, ay - 1, az)
                                + get(s, dims, ax, ay + 1, az)
                                + get(s, dims, ax, ay, az - 1)
                                + get(s, dims, ax, ay, az + 1);
                            put(d, dims, ax, ay, az, (1.0 - 6.0 * k) * c + k * n);
                        }
                    }
                }
            })
        });
    })
}

/// Like [`jacobi_step_work`] but restricted to a sub-box of the interior
/// (`lo..hi`, interior-relative). Used to split a step into an *inner*
/// region (computable while halos are in flight) and the boundary *shell*
/// (needs fresh halos) for communication/computation overlap.
pub fn jacobi_region_work(
    local: &LocalDomain,
    q_src: usize,
    q_dst: usize,
    k: f32,
    lo: [u64; 3],
    hi: [u64; 3],
) -> Work {
    let src = local.array(q_src).clone();
    let dst = local.array(q_dst).clone();
    let dims = local.array_dims();
    let off = local.radius().neg();
    Box::new(move || {
        if !src.has_data() {
            return;
        }
        src.with_data(|s| {
            dst.with_data(|d| {
                for z in lo[2]..hi[2] {
                    for y in lo[1]..hi[1] {
                        for x in lo[0]..hi[0] {
                            let (ax, ay, az) = (x + off[0], y + off[1], z + off[2]);
                            let c = get(s, dims, ax, ay, az);
                            let n = get(s, dims, ax - 1, ay, az)
                                + get(s, dims, ax + 1, ay, az)
                                + get(s, dims, ax, ay - 1, az)
                                + get(s, dims, ax, ay + 1, az)
                                + get(s, dims, ax, ay, az - 1)
                                + get(s, dims, ax, ay, az + 1);
                            put(d, dims, ax, ay, az, (1.0 - 6.0 * k) * c + k * n);
                        }
                    }
                }
            })
        });
    })
}

/// The shell of an interior box: the cell ranges *not* covered by the inner
/// box `[w, ext-w)` on every axis, expressed as up to 6 disjoint sub-boxes.
pub fn shell_boxes(ext: [u64; 3], w: u64) -> Vec<([u64; 3], [u64; 3])> {
    if ext.iter().any(|&e| e <= 2 * w) {
        return vec![([0, 0, 0], ext)]; // too thin: everything is shell
    }
    vec![
        // z slabs
        ([0, 0, 0], [ext[0], ext[1], w]),
        ([0, 0, ext[2] - w], [ext[0], ext[1], ext[2]]),
        // y slabs of the middle
        ([0, 0, w], [ext[0], w, ext[2] - w]),
        ([0, ext[1] - w, w], [ext[0], ext[1], ext[2] - w]),
        // x slabs of the core
        ([0, w, w], [w, ext[1] - w, ext[2] - w]),
        ([ext[0] - w, w, w], [ext[0], ext[1] - w, ext[2] - w]),
    ]
}

/// Like [`jacobi_region_work`] but with *signed* interior-relative bounds,
/// so the update region may extend into the halo (temporal blocking /
/// deep-halo schedules compute ghost rings to skip exchanges). The caller
/// guarantees every read stays inside the allocated array.
pub fn jacobi_signed_region_work(
    local: &LocalDomain,
    q_src: usize,
    q_dst: usize,
    k: f32,
    lo: [i64; 3],
    hi: [i64; 3],
) -> Work {
    let src = local.array(q_src).clone();
    let dst = local.array(q_dst).clone();
    let dims = local.array_dims();
    let off = local.radius().neg();
    for a in 0..3 {
        assert!(
            lo[a] - 1 + off[a] as i64 >= 0,
            "region reads below the array"
        );
        assert!(
            ((hi[a] + off[a] as i64) as u64) < dims[a],
            "region reads beyond the array"
        );
    }
    Box::new(move || {
        if !src.has_data() {
            return;
        }
        src.with_data(|s| {
            dst.with_data(|d| {
                for z in lo[2]..hi[2] {
                    for y in lo[1]..hi[1] {
                        for x in lo[0]..hi[0] {
                            let ax = (x + off[0] as i64) as u64;
                            let ay = (y + off[1] as i64) as u64;
                            let az = (z + off[2] as i64) as u64;
                            let c = get(s, dims, ax, ay, az);
                            let n = get(s, dims, ax - 1, ay, az)
                                + get(s, dims, ax + 1, ay, az)
                                + get(s, dims, ax, ay - 1, az)
                                + get(s, dims, ax, ay + 1, az)
                                + get(s, dims, ax, ay, az - 1)
                                + get(s, dims, ax, ay, az + 1);
                            put(d, dims, ax, ay, az, (1.0 - 6.0 * k) * c + k * n);
                        }
                    }
                }
            })
        });
    })
}

/// Build the work closure for one leapfrog acoustic-wave step:
/// `next = 2·cur − prev + c²·laplacian(cur)` over the interior.
pub fn wave_step_work(
    local: &LocalDomain,
    q_prev: usize,
    q_cur: usize,
    q_next: usize,
    c2: f32,
) -> Work {
    let prev = local.array(q_prev).clone();
    let cur = local.array(q_cur).clone();
    let next = local.array(q_next).clone();
    let dims = local.array_dims();
    let off = local.radius().neg();
    let ext = local.interior.extent;
    Box::new(move || {
        if !cur.has_data() {
            return;
        }
        cur.with_data(|u| {
            prev.with_data(|p| {
                next.with_data(|n| {
                    for z in 0..ext[2] {
                        for y in 0..ext[1] {
                            for x in 0..ext[0] {
                                let (ax, ay, az) = (x + off[0], y + off[1], z + off[2]);
                                let u0 = get(u, dims, ax, ay, az);
                                let lap = get(u, dims, ax - 1, ay, az)
                                    + get(u, dims, ax + 1, ay, az)
                                    + get(u, dims, ax, ay - 1, az)
                                    + get(u, dims, ax, ay + 1, az)
                                    + get(u, dims, ax, ay, az - 1)
                                    + get(u, dims, ax, ay, az + 1)
                                    - 6.0 * u0;
                                let v = 2.0 * u0 - get(p, dims, ax, ay, az) + c2 * lap;
                                put(n, dims, ax, ay, az, v);
                            }
                        }
                    }
                })
            })
        });
    })
}

/// A serial single-array reference simulation on the full periodic domain,
/// for verifying the distributed results cell-by-cell.
pub struct SerialGrid {
    /// Domain extent.
    pub dims: [u64; 3],
    /// Current values, x-fastest.
    pub data: Vec<f32>,
}

impl SerialGrid {
    /// Initialize from a function of global coordinates.
    pub fn init(dims: [u64; 3], f: impl Fn([u64; 3]) -> f32) -> SerialGrid {
        let mut data = Vec::with_capacity((dims[0] * dims[1] * dims[2]) as usize);
        for z in 0..dims[2] {
            for y in 0..dims[1] {
                for x in 0..dims[0] {
                    data.push(f([x, y, z]));
                }
            }
        }
        SerialGrid { dims, data }
    }

    /// Value at a (wrapped) coordinate.
    pub fn at(&self, x: i64, y: i64, z: i64) -> f32 {
        let d = self.dims;
        let (x, y, z) = (
            x.rem_euclid(d[0] as i64) as u64,
            y.rem_euclid(d[1] as i64) as u64,
            z.rem_euclid(d[2] as i64) as u64,
        );
        self.data[((z * d[1] + y) * d[0] + x) as usize]
    }

    /// One 7-point Jacobi step with periodic boundaries.
    pub fn jacobi_step(&mut self, k: f32) {
        let d = self.dims;
        let mut out = vec![0.0f32; self.data.len()];
        for z in 0..d[2] as i64 {
            for y in 0..d[1] as i64 {
                for x in 0..d[0] as i64 {
                    let c = self.at(x, y, z);
                    let n = self.at(x - 1, y, z)
                        + self.at(x + 1, y, z)
                        + self.at(x, y - 1, z)
                        + self.at(x, y + 1, z)
                        + self.at(x, y, z - 1)
                        + self.at(x, y, z + 1);
                    out[((z as u64 * d[1] + y as u64) * d[0] + x as u64) as usize] =
                        (1.0 - 6.0 * k) * c + k * n;
                }
            }
        }
        self.data = out;
    }

    /// One leapfrog wave step: computes `next` from (`prev`, `cur`) and
    /// stores it into `prev` (caller then swaps the roles).
    pub fn wave_step(prev: &mut SerialGrid, cur: &SerialGrid, c2: f32) {
        let d = cur.dims;
        let mut next = vec![0.0f32; cur.data.len()];
        for z in 0..d[2] as i64 {
            for y in 0..d[1] as i64 {
                for x in 0..d[0] as i64 {
                    let u0 = cur.at(x, y, z);
                    let lap = cur.at(x - 1, y, z)
                        + cur.at(x + 1, y, z)
                        + cur.at(x, y - 1, z)
                        + cur.at(x, y + 1, z)
                        + cur.at(x, y, z - 1)
                        + cur.at(x, y, z + 1)
                        - 6.0 * u0;
                    next[((z as u64 * d[1] + y as u64) * d[0] + x as u64) as usize] =
                        2.0 * u0 - prev.at(x, y, z) + c2 * lap;
                }
            }
        }
        prev.data = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_jacobi_conserves_mass() {
        let mut g = SerialGrid::init([6, 5, 4], |p| (p[0] + 2 * p[1] + 3 * p[2]) as f32);
        let before: f64 = g.data.iter().map(|&v| v as f64).sum();
        g.jacobi_step(0.1);
        let after: f64 = g.data.iter().map(|&v| v as f64).sum();
        assert!((before - after).abs() < 1e-2, "{before} vs {after}");
    }

    #[test]
    fn serial_jacobi_smooths_toward_mean() {
        let mut g = SerialGrid::init([8, 8, 8], |p| if p == [0, 0, 0] { 512.0 } else { 0.0 });
        for _ in 0..50 {
            g.jacobi_step(0.12);
        }
        let max = g.data.iter().cloned().fold(f32::MIN, f32::max);
        assert!(max < 512.0 * 0.2, "spike must diffuse: max {max}");
    }

    #[test]
    fn shell_plus_inner_covers_interior() {
        let ext = [7u64, 6, 5];
        let w = 1;
        let shells = shell_boxes(ext, w);
        let mut count = vec![0u8; (ext[0] * ext[1] * ext[2]) as usize];
        let mark = |count: &mut Vec<u8>, lo: [u64; 3], hi: [u64; 3]| {
            for z in lo[2]..hi[2] {
                for y in lo[1]..hi[1] {
                    for x in lo[0]..hi[0] {
                        count[((z * ext[1] + y) * ext[0] + x) as usize] += 1;
                    }
                }
            }
        };
        for (lo, hi) in shells {
            mark(&mut count, lo, hi);
        }
        mark(&mut count, [w, w, w], [ext[0] - w, ext[1] - w, ext[2] - w]);
        assert!(count.iter().all(|&c| c == 1), "exact disjoint cover");
    }

    #[test]
    fn thin_domain_is_all_shell() {
        let shells = shell_boxes([2, 8, 8], 1);
        assert_eq!(shells.len(), 1);
        assert_eq!(shells[0], ([0, 0, 0], [2, 8, 8]));
    }

    #[test]
    fn wave_step_preserves_constant_state() {
        let cur = SerialGrid::init([5, 5, 5], |_| 3.0);
        let mut prev = SerialGrid::init([5, 5, 5], |_| 3.0);
        SerialGrid::wave_step(&mut prev, &cur, 0.05);
        assert!(prev.data.iter().all(|&v| (v - 3.0).abs() < 1e-6));
    }
}
