//! Explore the three setup phases for a domain shape: the hierarchical
//! partition, the QAP flow/distance matrices, and the chosen placement —
//! with its predicted cost against the trivial assignment.
//!
//! ```text
//! cargo run --release -p stencil-examples --bin placement_explorer -- 1440 1452 700 4
//! ```

use stencil_core::dim3::Neighborhood;
use stencil_core::{placement, qap, Partition, PlacementStrategy, Radius};
use topo::summit::summit_node;
use topo::NodeDiscovery;

fn main() {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let (domain, nodes) = match args.len() {
        0 => ([1440u64, 1452, 700], 1usize),
        3 => ([args[0], args[1], args[2]], 1),
        4 => ([args[0], args[1], args[2]], args[3] as usize),
        _ => {
            eprintln!("usage: placement_explorer [X Y Z [nodes]]");
            std::process::exit(2);
        }
    };

    println!("placement explorer: domain {domain:?}, {nodes} Summit node(s), 6 GPUs each\n");

    let part = Partition::new(domain, nodes, 6);
    println!("phase 1 — partition");
    println!(
        "  node grid {:?}, gpu grid {:?}",
        part.node_dims, part.gpu_dims
    );
    let b = part.gpu_box([0, 0, 0], [0, 0, 0]);
    println!(
        "  subdomain shape {:?} ({:.2}:1 max aspect ratio)",
        b.extent,
        *b.extent.iter().max().unwrap() as f64 / (*b.extent.iter().min().unwrap()).max(1) as f64
    );

    let disc = NodeDiscovery::discover(&summit_node());
    let r = Radius::constant(2);
    let w = placement::flow_matrix(&part, [0, 0, 0], Neighborhood::Full26, &r, 4, 4);
    println!("\nphase 2 — placement (node 0)");
    println!("  flow matrix (MiB exchanged per pair per halo exchange):");
    for (i, row) in w.iter().enumerate() {
        print!("    s{i}:");
        for v in row {
            print!(" {:>7.1}", v / (1 << 20) as f64);
        }
        println!();
    }
    let d = disc.distance_matrix();
    let aware = placement::place(
        &part,
        [0, 0, 0],
        &disc,
        Neighborhood::Full26,
        &r,
        4,
        4,
        PlacementStrategy::NodeAware,
        stencil_core::dim3::Boundary::Periodic,
    );
    let trivial: Vec<usize> = (0..6).collect();
    let trivial_cost = qap::cost(&w, &d, &trivial);
    println!(
        "\n  node-aware assignment (subdomain -> GPU): {:?}",
        aware.gpu_for_subdomain
    );
    println!(
        "  QAP cost: node-aware {:.4e}  vs trivial {:.4e}",
        aware.cost, trivial_cost
    );
    if trivial_cost > 0.0 {
        println!(
            "  predicted flow-weighted improvement: {:.1}%",
            (1.0 - aware.cost / trivial_cost) * 100.0
        );
    }

    println!("\nphase 3 — discovered connectivity the distances came from:");
    print!("{}", disc.render_matrix());
}
