//! Report the simulated machine's topology and show which exchange method
//! capability specialization selects for every subdomain pair of a small
//! job — the paper's §III-C decision table, made visible.
//!
//! ```text
//! cargo run --release -p stencil-examples --bin topology_report
//! ```

use std::sync::Arc;

use mpisim::{run_world, WorldConfig};
use parking_lot::Mutex;
use stencil_core::{method, Dir3, DomainBuilder, Methods};
use topo::summit::{summit_cluster, summit_node};
use topo::NodeDiscovery;

fn main() {
    let node = summit_node();
    let disc = NodeDiscovery::discover(&node);
    println!(
        "simulated node: {} ({} CPUs, {} GPUs, {} NIC)",
        node.name(),
        node.num_cpus(),
        node.num_gpus(),
        node.num_nics()
    );
    println!("\nGPU connectivity:");
    print!("{}", disc.render_matrix());

    println!("\nmethod selection truth table (Methods::all(), platform not CUDA-aware):");
    println!("  {:<46} -> method", "pair relationship");
    for (desc, caps) in [
        (
            "same GPU (self-exchange)",
            method::PairCaps {
                same_device: true,
                same_rank: true,
                same_node: true,
                peer_access: true,
                cuda_aware: false,
                persistent: false,
                partitioned: false,
            },
        ),
        (
            "same rank, different GPUs, peer ok",
            method::PairCaps {
                same_device: false,
                same_rank: true,
                same_node: true,
                peer_access: true,
                cuda_aware: false,
                persistent: false,
                partitioned: false,
            },
        ),
        (
            "same node, different ranks, peer ok",
            method::PairCaps {
                same_device: false,
                same_rank: false,
                same_node: true,
                peer_access: true,
                cuda_aware: false,
                persistent: false,
                partitioned: false,
            },
        ),
        (
            "same node, no peer access",
            method::PairCaps {
                same_device: false,
                same_rank: false,
                same_node: true,
                peer_access: false,
                cuda_aware: false,
                persistent: false,
                partitioned: false,
            },
        ),
        (
            "different nodes",
            method::PairCaps {
                same_device: false,
                same_rank: false,
                same_node: false,
                peer_access: false,
                cuda_aware: false,
                persistent: false,
                partitioned: false,
            },
        ),
    ] {
        println!("  {:<46} -> {}", desc, method::select(Methods::all(), caps));
    }

    // A live plan from a real (small) job: 2 nodes, 2 ranks each.
    let plans: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let p2 = Arc::clone(&plans);
    run_world(WorldConfig::new(summit_cluster(2), 2), move |ctx| {
        let dom = DomainBuilder::new([48, 48, 48]).radius(1).build(ctx);
        let mut lines = vec![format!(
            "rank {} (node {}, gpus {:?}): {}",
            ctx.rank(),
            ctx.node(),
            ctx.gpus(),
            dom.plan_summary()
        )];
        if ctx.rank() == 0 {
            let l = &dom.locals()[0];
            lines.push(format!(
                "  subdomain {:?} sends toward +x to neighbor {:?}",
                l.gpu_idx,
                dom.partition()
                    .neighbor(l.node_idx, l.gpu_idx, Dir3::new(1, 0, 0))
            ));
        }
        p2.lock().push(lines.join("\n"));
    });
    println!("\nlive specialized plans for a 48^3 domain on 2 nodes x 2 ranks:");
    let mut v = plans.lock().clone();
    v.sort();
    for line in v {
        println!("  {line}");
    }
}
