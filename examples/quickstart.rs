//! Quickstart: distribute a 3D heat-diffusion (Jacobi) problem over one
//! simulated Summit node, exchange halos each step, and verify the result
//! cell-by-cell against a serial reference.
//!
//! ```text
//! cargo run --release -p stencil-examples --bin quickstart
//! ```

use std::sync::Arc;

use mpisim::{run_world, WorldConfig};
use parking_lot::Mutex;
use stencil_core::{DomainBuilder, Methods, Neighborhood};
use stencil_examples::{jacobi_step_work, jacobi_traffic, SerialGrid};
use topo::summit::summit_cluster;

fn main() {
    const DOMAIN: [u64; 3] = [36, 30, 24];
    const STEPS: usize = 5;
    const K: f32 = 0.1;
    let init = |p: [u64; 3]| ((p[0] * 7 + p[1] * 13 + p[2] * 29) % 101) as f32;

    // ---- distributed run: 1 node, 6 ranks, 1 GPU each --------------------
    let max_err: Arc<Mutex<f32>> = Arc::new(Mutex::new(0.0));
    let elapsed: Arc<Mutex<f64>> = Arc::new(Mutex::new(0.0));
    let me = Arc::clone(&max_err);
    let el = Arc::clone(&elapsed);
    let world = WorldConfig::new(summit_cluster(1), 6);
    run_world(world, move |ctx| {
        // Build the distributed domain: radius-1 halos, two quantities
        // (double buffering), face neighbors only (7-point stencil).
        let dom = DomainBuilder::new(DOMAIN)
            .radius(1)
            .quantities(2)
            .neighborhood(Neighborhood::Faces6)
            .methods(Methods::all())
            .build(ctx);
        for local in dom.locals() {
            local.fill(0, init);
        }
        ctx.barrier();
        let t0 = ctx.wtime();
        for step in 0..STEPS {
            let (q_src, q_dst) = (step % 2, (step + 1) % 2);
            dom.exchange(ctx); // refresh halos of both quantities
            let kernels: Vec<_> = dom
                .locals()
                .iter()
                .map(|l| {
                    l.launch_compute(
                        ctx.sim(),
                        "jacobi",
                        jacobi_traffic(l),
                        Some(jacobi_step_work(l, q_src, q_dst, K)),
                    )
                })
                .collect();
            ctx.sim().wait_all(&kernels);
            ctx.barrier();
        }
        if ctx.rank() == 0 {
            *el.lock() = ctx.wtime() - t0;
        }

        // ---- verify against the serial reference ------------------------
        let mut reference = SerialGrid::init(DOMAIN, init);
        for _ in 0..STEPS {
            reference.jacobi_step(K);
        }
        let q_final = STEPS % 2;
        let mut worst = 0.0f32;
        for local in dom.locals() {
            let o = local.interior.origin;
            let e = local.interior.extent;
            for z in 0..e[2] {
                for y in 0..e[1] {
                    for x in 0..e[0] {
                        let got = local.get_global_f32(q_final, [o[0] + x, o[1] + y, o[2] + z]);
                        let want =
                            reference.at((o[0] + x) as i64, (o[1] + y) as i64, (o[2] + z) as i64);
                        worst = worst.max((got - want).abs());
                    }
                }
            }
        }
        let mut m = me.lock();
        *m = m.max(worst);
    });

    println!("quickstart: {STEPS} Jacobi steps on a {DOMAIN:?} grid over 6 simulated GPUs");
    println!(
        "  virtual time for compute+exchange loop: {:.3} ms",
        *elapsed.lock() * 1e3
    );
    let err = *max_err.lock();
    println!("  max |distributed - serial reference|:  {err:e}");
    assert!(
        err == 0.0,
        "distributed result must match the reference exactly"
    );
    println!("  OK: bit-identical to the serial reference");
}
