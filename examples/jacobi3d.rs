//! Multi-node Jacobi relaxation with communication/computation overlap.
//!
//! Each step splits the update into an *inner* region (no halo dependence,
//! computed while the exchange is in flight via
//! `DistributedDomain::exchange_start`/`exchange_finish`) and a
//! boundary *shell* computed after halos land — the overlap structure of
//! paper §III-D. Runs both the overlapped and the serialized schedule and
//! reports the virtual-time difference, then verifies the result against a
//! serial reference.
//!
//! ```text
//! cargo run --release -p stencil-examples --bin jacobi3d
//! cargo run --release -p stencil-examples --bin jacobi3d -- --metrics out.json
//! ```
//!
//! With `--metrics PATH`, a [`detsim::MetricsReport`] covering both
//! schedules is printed as a table and written to `PATH` as JSON (see
//! `docs/OBSERVABILITY.md`).

use std::sync::Arc;

use mpisim::{run_world, RankCtx, WorldConfig};
use parking_lot::Mutex;
use stencil_core::{DistributedDomain, DomainBuilder, Methods, Neighborhood};
use stencil_examples::{jacobi_region_work, jacobi_traffic, shell_boxes, SerialGrid};
use topo::summit::summit_cluster;

const DOMAIN: [u64; 3] = [96, 80, 64];
const STEPS: usize = 4;
const K: f32 = 0.08;
/// The simulated kernel's memory-traffic multiplier: the toy 7-point update
/// is scaled up to the cost of a heavier physics kernel (e.g. an MHD update
/// touching dozens of quantities), so the overlap benefit is visible at
/// this small, fast-to-verify domain size. Numerics are unaffected.
const KERNEL_WEIGHT: u64 = 50;

fn init(p: [u64; 3]) -> f32 {
    ((p[0] * 11 + p[1] * 5 + p[2] * 17) % 97) as f32
}

fn run_steps(ctx: &RankCtx, dom: &DistributedDomain, overlap: bool) -> f64 {
    for local in dom.locals() {
        local.fill(0, init);
    }
    ctx.barrier();
    let t0 = ctx.wtime();
    for step in 0..STEPS {
        let (q_src, q_dst) = (step % 2, (step + 1) % 2);
        if overlap {
            let handle = dom.exchange_start(ctx);
            // Inner region: computable with stale halos (it doesn't read them).
            let mut kernels = Vec::new();
            for l in dom.locals() {
                let e = l.interior.extent;
                if e.iter().all(|&v| v > 2) {
                    kernels.push(l.launch_compute(
                        ctx.sim(),
                        "jacobi-inner",
                        jacobi_traffic(l) * KERNEL_WEIGHT,
                        Some(jacobi_region_work(
                            l,
                            q_src,
                            q_dst,
                            K,
                            [1, 1, 1],
                            [e[0] - 1, e[1] - 1, e[2] - 1],
                        )),
                    ));
                }
            }
            dom.exchange_finish(ctx, handle);
            // Shell: needs the fresh halos.
            for l in dom.locals() {
                for (lo, hi) in shell_boxes(l.interior.extent, 1) {
                    kernels.push(l.launch_compute(
                        ctx.sim(),
                        "jacobi-shell",
                        (hi[0] - lo[0]) * (hi[1] - lo[1]) * (hi[2] - lo[2]) * 32 * KERNEL_WEIGHT,
                        Some(jacobi_region_work(l, q_src, q_dst, K, lo, hi)),
                    ));
                }
            }
            ctx.sim().wait_all(&kernels);
        } else {
            dom.exchange(ctx);
            let kernels: Vec<_> = dom
                .locals()
                .iter()
                .map(|l| {
                    let e = l.interior.extent;
                    l.launch_compute(
                        ctx.sim(),
                        "jacobi",
                        jacobi_traffic(l) * KERNEL_WEIGHT,
                        Some(jacobi_region_work(l, q_src, q_dst, K, [0, 0, 0], e)),
                    )
                })
                .collect();
            ctx.sim().wait_all(&kernels);
        }
        ctx.barrier();
    }
    ctx.wtime() - t0
}

fn verify(dom: &DistributedDomain) -> f32 {
    let mut reference = SerialGrid::init(DOMAIN, init);
    for _ in 0..STEPS {
        reference.jacobi_step(K);
    }
    let q_final = STEPS % 2;
    let mut worst = 0.0f32;
    for local in dom.locals() {
        let o = local.interior.origin;
        let e = local.interior.extent;
        for z in 0..e[2] {
            for y in 0..e[1] {
                for x in 0..e[0] {
                    let got = local.get_global_f32(q_final, [o[0] + x, o[1] + y, o[2] + z]);
                    let want =
                        reference.at((o[0] + x) as i64, (o[1] + y) as i64, (o[2] + z) as i64);
                    worst = worst.max((got - want).abs());
                }
            }
        }
    }
    worst
}

fn metrics_path() -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--metrics" => Some(path.clone()),
        other => panic!("unknown arguments {other:?} (expected --metrics PATH)"),
    }
}

fn main() {
    let metrics = metrics_path();
    let results: Arc<Mutex<Vec<(bool, f64, f32)>>> = Arc::new(Mutex::new(Vec::new()));
    let r2 = Arc::clone(&results);
    // 2 nodes x 3 ranks x 2 GPUs: peer, colocated, and staged paths are all
    // exercised in one run.
    let world = WorldConfig::new(summit_cluster(2), 3).metrics(metrics.is_some());
    let report = run_world(world, move |ctx| {
        let dom = DomainBuilder::new(DOMAIN)
            .radius(1)
            .quantities(2)
            .neighborhood(Neighborhood::Faces6)
            .methods(Methods::all())
            .build(ctx);
        for &overlap in &[false, true] {
            let dt = run_steps(ctx, &dom, overlap);
            let err = verify(&dom);
            if ctx.rank() == 0 {
                r2.lock().push((overlap, dt, err));
            }
            ctx.barrier();
        }
    });
    println!("jacobi3d: {STEPS} steps on {DOMAIN:?}, 2 nodes x 3 ranks x 2 GPUs");
    let res = results.lock();
    for (overlap, dt, err) in res.iter() {
        println!(
            "  {:<22} {:8.3} ms   max err vs serial: {err:e}",
            if *overlap {
                "overlapped schedule"
            } else {
                "serialized schedule"
            },
            dt * 1e3
        );
        assert_eq!(*err, 0.0, "distributed Jacobi must match the reference");
    }
    let speedup = res[0].1 / res[1].1;
    println!("  overlap speedup: {speedup:.2}x");
    println!("  (overlap is bounded by the CPU time spent issuing CUDA calls —");
    println!("   the effect the paper's Fig. 9 shows and its §VI proposes fixing)");
    println!("  OK: identical numerics, overlapped communication");
    if let (Some(path), Some(m)) = (metrics, report.metrics) {
        println!();
        println!("{}", m.to_text());
        std::fs::write(&path, m.to_json()).expect("write metrics JSON");
        println!("  metrics written to {path}");
    }
}
