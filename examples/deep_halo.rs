//! Deep halos / temporal blocking: trade halo-exchange *size* for exchange
//! *frequency* (paper §VI, after SkelCL): allocate a radius-K halo for a
//! radius-1 stencil and exchange only every K steps, computing shrinking
//! ghost rings in between. Fewer synchronization points, super-linearly
//! more data per exchange — this example measures the trade-off and
//! verifies both schedules bit-for-bit against a serial reference.
//!
//! ```text
//! cargo run --release -p stencil-examples --bin deep_halo
//! ```

use std::sync::Arc;

use mpisim::{run_world, RankCtx, WorldConfig};
use parking_lot::Mutex;
use stencil_core::{DistributedDomain, DomainBuilder, Methods, Neighborhood};
use stencil_examples::{jacobi_signed_region_work, SerialGrid};
use topo::summit::summit_cluster;

const DOMAIN: [u64; 3] = [72, 60, 48];
const STEPS: usize = 8; // must be a multiple of every tested K
const K: f32 = 0.07;

fn init(p: [u64; 3]) -> f32 {
    ((p[0] * 13 + p[1] * 7 + p[2] * 3) % 89) as f32
}

/// Run `STEPS` Jacobi steps exchanging every `period` steps with halo depth
/// `period` (period = 1 is the ordinary schedule). Returns elapsed virtual
/// seconds.
fn run_schedule(ctx: &RankCtx, dom: &DistributedDomain, period: usize) -> f64 {
    for local in dom.locals() {
        local.fill(0, init);
    }
    ctx.barrier();
    let t0 = ctx.wtime();
    let mut step = 0;
    while step < STEPS {
        dom.exchange(ctx); // refreshes halos to depth `period`
        for sub in 0..period {
            let (q_src, q_dst) = ((step + sub) % 2, (step + sub + 1) % 2);
            // After `sub` sub-steps the valid ghost depth has shrunk by
            // `sub`; compute the interior plus the still-computable rings so
            // the next sub-step has valid neighbors without communication.
            let ghost = (period - 1 - sub) as i64;
            let kernels: Vec<_> = dom
                .locals()
                .iter()
                .map(|l| {
                    let e = l.interior.extent;
                    let lo = [-ghost, -ghost, -ghost];
                    let hi = [
                        e[0] as i64 + ghost,
                        e[1] as i64 + ghost,
                        e[2] as i64 + ghost,
                    ];
                    let cells = (hi[0] - lo[0]) * (hi[1] - lo[1]) * (hi[2] - lo[2]);
                    l.launch_compute(
                        ctx.sim(),
                        "jacobi-deep",
                        cells as u64 * 32,
                        Some(jacobi_signed_region_work(l, q_src, q_dst, K, lo, hi)),
                    )
                })
                .collect();
            ctx.sim().wait_all(&kernels);
        }
        step += period;
        ctx.barrier();
    }
    ctx.wtime() - t0
}

fn verify(dom: &DistributedDomain) -> f32 {
    let mut reference = SerialGrid::init(DOMAIN, init);
    for _ in 0..STEPS {
        reference.jacobi_step(K);
    }
    let q_final = STEPS % 2;
    let mut worst = 0.0f32;
    for local in dom.locals() {
        let o = local.interior.origin;
        let e = local.interior.extent;
        for z in 0..e[2] {
            for y in 0..e[1] {
                for x in 0..e[0] {
                    let got = local.get_global_f32(q_final, [o[0] + x, o[1] + y, o[2] + z]);
                    let want =
                        reference.at((o[0] + x) as i64, (o[1] + y) as i64, (o[2] + z) as i64);
                    worst = worst.max((got - want).abs());
                }
            }
        }
    }
    worst
}

/// Per-configuration outcome: (exchange period, virtual seconds, max error
/// vs the serial reference, plan summary).
type RunResult = (usize, f64, f32, String);

fn main() {
    let results: Arc<Mutex<Vec<RunResult>>> = Arc::new(Mutex::new(Vec::new()));
    let r2 = Arc::clone(&results);
    run_world(WorldConfig::new(summit_cluster(1), 6), move |ctx| {
        for period in [1usize, 2, 4] {
            // One domain per period: the halo depth is the exchange period.
            let dom = DomainBuilder::new(DOMAIN)
                .radius(period as u64)
                .quantities(2)
                .neighborhood(Neighborhood::Full26)
                .methods(Methods::all())
                .build(ctx);
            let dt = run_schedule(ctx, &dom, period);
            let err = verify(&dom);
            if ctx.rank() == 0 {
                r2.lock()
                    .push((period, dt, err, dom.plan_summary().to_string()));
            }
            ctx.barrier();
        }
    });
    println!("deep_halo: {STEPS} Jacobi steps on {DOMAIN:?}, 1 node x 6 ranks");
    println!("(halo depth = exchange period; ghost rings computed redundantly in between)\n");
    for (period, dt, err, plan) in results.lock().iter() {
        println!(
            "  exchange every {period} step(s), halo depth {period}: {:8.3} ms   err {err:e}",
            dt * 1e3
        );
        println!("      {plan}");
        assert_eq!(*err, 0.0, "deep-halo schedule must match the reference");
    }
    println!("\n  OK: all schedules bit-identical to the serial reference;");
    println!("  the sweet spot depends on message sizes vs per-exchange latency,");
    println!("  exactly the trade-off the paper's §VI describes.");
}
