//! Acoustic wave propagation (leapfrog, 7-point Laplacian) across a
//! simulated multi-GPU node, verified against a serial reference — the kind
//! of seismic/wave workload that motivates the paper's introduction.
//!
//! ```text
//! cargo run --release -p stencil-examples --bin wave3d
//! ```

use std::sync::Arc;

use mpisim::{run_world, WorldConfig};
use parking_lot::Mutex;
use stencil_core::{DomainBuilder, Methods, Neighborhood};
use stencil_examples::{wave_step_work, SerialGrid};
use topo::summit::summit_cluster;

const DOMAIN: [u64; 3] = [40, 36, 30];
const STEPS: usize = 6;
const C2: f32 = 0.05; // (c * dt / dx)^2

/// Initial displacement: a smooth pulse in the middle of the domain.
fn pulse(p: [u64; 3]) -> f32 {
    let c = [
        DOMAIN[0] as f32 / 2.0,
        DOMAIN[1] as f32 / 2.0,
        DOMAIN[2] as f32 / 2.0,
    ];
    let d2 =
        (p[0] as f32 - c[0]).powi(2) + (p[1] as f32 - c[1]).powi(2) + (p[2] as f32 - c[2]).powi(2);
    (-d2 / 18.0).exp()
}

fn main() {
    let out: Arc<Mutex<(f64, f32, f32)>> = Arc::new(Mutex::new((0.0, 0.0, 0.0)));
    let o2 = Arc::clone(&out);
    let world = WorldConfig::new(summit_cluster(1), 6);
    run_world(world, move |ctx| {
        // Three quantities: displacement at t-1, t, t+1, rotating each step.
        let dom = DomainBuilder::new(DOMAIN)
            .radius(1)
            .quantities(3)
            .neighborhood(Neighborhood::Faces6)
            .methods(Methods::all())
            .build(ctx);
        for local in dom.locals() {
            local.fill(0, pulse); // u(t-1)
            local.fill(1, pulse); // u(t)   (starts at rest)
        }
        ctx.barrier();
        let t0 = ctx.wtime();
        for step in 0..STEPS {
            let (qp, qc, qn) = (step % 3, (step + 1) % 3, (step + 2) % 3);
            dom.exchange(ctx);
            let kernels: Vec<_> = dom
                .locals()
                .iter()
                .map(|l| {
                    l.launch_compute(
                        ctx.sim(),
                        "wave",
                        l.interior.extent.iter().product::<u64>() * 10 * 4,
                        Some(wave_step_work(l, qp, qc, qn, C2)),
                    )
                })
                .collect();
            ctx.sim().wait_all(&kernels);
            ctx.barrier();
        }
        let elapsed = ctx.wtime() - t0;

        // Serial reference with the same buffer rotation.
        let mut prev = SerialGrid::init(DOMAIN, pulse);
        let mut cur = SerialGrid::init(DOMAIN, pulse);
        for _ in 0..STEPS {
            SerialGrid::wave_step(&mut prev, &cur, C2);
            std::mem::swap(&mut prev, &mut cur);
        }
        let q_final = (STEPS + 1) % 3; // the "current" buffer after STEPS rotations
        let mut worst = 0.0f32;
        let mut peak = 0.0f32;
        for local in dom.locals() {
            let og = local.interior.origin;
            let e = local.interior.extent;
            for z in 0..e[2] {
                for y in 0..e[1] {
                    for x in 0..e[0] {
                        let got = local.get_global_f32(q_final, [og[0] + x, og[1] + y, og[2] + z]);
                        let want =
                            cur.at((og[0] + x) as i64, (og[1] + y) as i64, (og[2] + z) as i64);
                        worst = worst.max((got - want).abs());
                        peak = peak.max(got.abs());
                    }
                }
            }
        }
        if ctx.rank() == 0 {
            *o2.lock() = (elapsed, worst, peak);
        }
    });
    let (elapsed, err, peak) = *out.lock();
    println!("wave3d: {STEPS} leapfrog steps on {DOMAIN:?}, 1 node x 6 ranks");
    println!("  virtual time: {:.3} ms", elapsed * 1e3);
    println!("  wavefield peak |u|: {peak:.4}");
    println!("  max err vs serial reference: {err:e}");
    assert_eq!(err, 0.0, "distributed wave must match the reference");
    println!("  OK: bit-identical to the serial reference");
}
